package nic

import (
	"encoding/binary"
	"sync"

	"repro/internal/cheri"
	"repro/internal/hostos"
	"repro/internal/sim"
)

// wireOverhead is the per-frame on-the-wire overhead beyond the frame
// bytes handed to the device: preamble+SFD (8) + FCS (4) + inter-frame
// gap (12). With 1538 wire bytes per 1448-byte TCP payload this yields
// the canonical 941 Mbit/s GbE goodput ceiling.
const wireOverhead = 24

// maxBurst bounds ring processing per Step call.
const maxBurst = 64

// maxFrame is the largest frame the device accepts (MTU 1500 plus
// Ethernet header; no jumbo support, like the paper's setup).
const maxFrame = 1514

// Port is one Ethernet port (one PCI function) of a card. It implements
// hostos.PCIDevice.
type Port struct {
	card *Card
	idx  int
	bdf  string
	mac  [6]byte
	clk  hostos.Clock
	mem  *cheri.TMem
	line *sim.Serializer
	fifo rxFifo

	wire    *Wire
	wireEnd int

	capDMA bool
	dmaCap cheri.Cap

	mu   sync.Mutex
	regs portRegs

	// statistics (guarded by mu)
	gprc, gptc uint64 // good packets
	gorc, gotc uint64 // good octets
}

// portRegs is the software-visible register file.
type portRegs struct {
	ctrl, status uint32
	rctl, tctl   uint32

	rdbal, rdbah, rdlen, rdh, rdt uint32
	tdbal, tdbah, tdlen, tdh, tdt uint32
}

// attach connects the port to a wire endpoint and raises link-up.
func (p *Port) attach(w *Wire, end int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.wire = w
	p.wireEnd = end
	p.regs.status |= StatusLU
}

// BDF returns the port's PCI address.
func (p *Port) BDF() string { return p.bdf }

// VendorID returns Intel's PCI vendor id.
func (p *Port) VendorID() uint16 { return 0x8086 }

// DeviceID returns the 82576 device id.
func (p *Port) DeviceID() uint16 { return 0x10C9 }

// MAC returns the port's hardware address.
func (p *Port) MAC() [6]byte { return p.mac }

// SetDMACap grants the port its DMA window (IOMMU programming). Only
// meaningful in capability-DMA mode.
func (p *Port) SetDMACap(c cheri.Cap) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dmaCap = c
}

// RegRead32 implements MMIO reads.
func (p *Port) RegRead32(off uint64) uint32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch off {
	case RegCTRL:
		return p.regs.ctrl
	case RegSTATUS:
		return p.regs.status
	case RegRCTL:
		return p.regs.rctl
	case RegTCTL:
		return p.regs.tctl
	case RegRDBAL:
		return p.regs.rdbal
	case RegRDBAH:
		return p.regs.rdbah
	case RegRDLEN:
		return p.regs.rdlen
	case RegRDH:
		return p.regs.rdh
	case RegRDT:
		return p.regs.rdt
	case RegTDBAL:
		return p.regs.tdbal
	case RegTDBAH:
		return p.regs.tdbah
	case RegTDLEN:
		return p.regs.tdlen
	case RegTDH:
		return p.regs.tdh
	case RegTDT:
		return p.regs.tdt
	case RegMPC:
		return uint32(p.fifo.missedCount())
	case RegGPRC:
		return uint32(p.gprc)
	case RegGPTC:
		return uint32(p.gptc)
	case RegGORCL:
		return uint32(p.gorc)
	case RegGORCH:
		return uint32(p.gorc >> 32)
	case RegGOTCL:
		return uint32(p.gotc)
	case RegGOTCH:
		return uint32(p.gotc >> 32)
	case RegRAL0:
		return uint32(p.mac[0]) | uint32(p.mac[1])<<8 | uint32(p.mac[2])<<16 | uint32(p.mac[3])<<24
	case RegRAH0:
		return uint32(p.mac[4]) | uint32(p.mac[5])<<8 | 1<<31 // AV bit
	default:
		return 0
	}
}

// RegWrite32 implements MMIO writes.
func (p *Port) RegWrite32(off uint64, v uint32) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch off {
	case RegCTRL:
		if v&CtrlRST != 0 {
			p.resetLocked()
			return
		}
		p.regs.ctrl = v
	case RegRCTL:
		p.regs.rctl = v
	case RegTCTL:
		p.regs.tctl = v
	case RegRDBAL:
		p.regs.rdbal = v
	case RegRDBAH:
		p.regs.rdbah = v
	case RegRDLEN:
		p.regs.rdlen = v
	case RegRDH:
		p.regs.rdh = v
	case RegRDT:
		p.regs.rdt = v
	case RegTDBAL:
		p.regs.tdbal = v
	case RegTDBAH:
		p.regs.tdbah = v
	case RegTDLEN:
		p.regs.tdlen = v
	case RegTDH:
		p.regs.tdh = v
	case RegTDT:
		p.regs.tdt = v
	}
}

// resetLocked clears device state (CTRL.RST).
func (p *Port) resetLocked() {
	lu := p.regs.status & StatusLU
	p.regs = portRegs{status: lu}
	p.gprc, p.gptc, p.gorc, p.gotc = 0, 0, 0, 0
}

// dmaRO maps [addr, addr+n) of host memory for a device read.
func (p *Port) dmaRO(addr uint64, n int) ([]byte, bool) {
	if p.capDMA {
		s, err := p.mem.CheckedSliceRO(p.dmaCap.SetAddr(addr), addr, n)
		return s, err == nil
	}
	s, err := p.mem.RawSlice(addr, n)
	return s, err == nil
}

// dmaRW maps [addr, addr+n) for a device write, invalidating tags.
func (p *Port) dmaRW(addr uint64, n int) ([]byte, bool) {
	if p.capDMA {
		s, err := p.mem.CheckedSlice(p.dmaCap.SetAddr(addr), addr, n)
		return s, err == nil
	}
	s, err := p.mem.RawSlice(addr, n)
	if err != nil {
		return nil, false
	}
	p.mem.RawInvalidate(addr, n)
	return s, true
}

// Step advances the device: it drains the TX ring onto the wire and
// fills the RX ring from the FIFO, under line-rate and bus-budget
// admission. The DPDK poll-mode driver calls it from every burst.
func (p *Port) Step() {
	p.stepTX()
	p.stepRX()
}

// stepTX transmits descriptors [TDH, TDT).
func (p *Port) stepTX() {
	p.mu.Lock()
	if p.regs.tctl&TctlEN == 0 || p.wire == nil {
		p.mu.Unlock()
		return
	}
	base := uint64(p.regs.tdbal) | uint64(p.regs.tdbah)<<32
	n := p.regs.tdlen / DescSize
	head, tail := p.regs.tdh, p.regs.tdt
	p.mu.Unlock()
	if n == 0 {
		return
	}

	for burst := 0; burst < maxBurst && head != tail; burst++ {
		descAddr := base + uint64(head)*DescSize
		desc, ok := p.dmaRO(descAddr, DescSize)
		if !ok {
			return // DMA fault: silently stop, like a master abort
		}
		bufAddr := binary.LittleEndian.Uint64(desc[0:8])
		length := int(binary.LittleEndian.Uint16(desc[8:10]))
		cmd := desc[11]
		if length == 0 || length > maxFrame || cmd&TxCmdEOP == 0 {
			// Malformed descriptor: consume it without transmitting.
			p.writeBackStatus(descAddr, StatDD)
			head = (head + 1) % n
			continue
		}
		// Admission: the line must have room AND the bus must have
		// budget for the DMA read.
		if !p.line.CanAdmit() || !p.card.busCanAdmit(p.idx) {
			break
		}
		buf, ok := p.dmaRO(bufAddr, length)
		if !ok {
			p.writeBackStatus(descAddr, StatDD)
			head = (head + 1) % n
			continue
		}
		doneAt, _ := p.line.Admit(length + wireOverhead)
		p.card.busAdmit(p.idx, int(p.card.cfg.BusCostTX*float64(length+wireOverhead)))
		data := make([]byte, length)
		copy(data, buf)
		p.wire.send(p.wireEnd, frame{data: data, readyAt: doneAt + PropagationDelayNS})

		p.writeBackStatus(descAddr, StatDD)
		head = (head + 1) % n

		p.mu.Lock()
		p.gptc++
		p.gotc += uint64(length)
		p.mu.Unlock()
	}
	p.mu.Lock()
	p.regs.tdh = head
	p.mu.Unlock()
}

// stepRX moves fully arrived frames into descriptors [RDH, RDT).
func (p *Port) stepRX() {
	p.mu.Lock()
	if p.regs.rctl&RctlEN == 0 {
		p.mu.Unlock()
		return
	}
	base := uint64(p.regs.rdbal) | uint64(p.regs.rdbah)<<32
	n := p.regs.rdlen / DescSize
	head, tail := p.regs.rdh, p.regs.rdt
	p.mu.Unlock()
	if n == 0 {
		return
	}

	now := p.clk.Now()
	for burst := 0; burst < maxBurst && head != tail; burst++ {
		// Bus budget gate BEFORE popping, so refused frames stay queued.
		if !p.card.busCanAdmit(p.idx) {
			break
		}
		fr, ok := p.fifo.pop(now)
		if !ok {
			break
		}
		descAddr := base + uint64(head)*DescSize
		desc, ok := p.dmaRO(descAddr, DescSize)
		if !ok {
			break
		}
		bufAddr := binary.LittleEndian.Uint64(desc[0:8])
		dst, ok := p.dmaRW(bufAddr, len(fr.data))
		if !ok {
			// Bad buffer: drop the frame, consume the descriptor.
			p.writeBackRX(descAddr, 0)
			head = (head + 1) % n
			continue
		}
		copy(dst, fr.data)
		p.card.busAdmit(p.idx, int(p.card.cfg.BusCostRX*float64(len(fr.data)+wireOverhead)))
		p.writeBackRX(descAddr, uint16(len(fr.data)))
		head = (head + 1) % n

		p.mu.Lock()
		p.gprc++
		p.gorc += uint64(len(fr.data))
		p.mu.Unlock()
	}
	p.mu.Lock()
	p.regs.rdh = head
	p.mu.Unlock()
}

// writeBackStatus sets the status byte of a TX descriptor.
func (p *Port) writeBackStatus(descAddr uint64, status byte) {
	if s, ok := p.dmaRW(descAddr+12, 1); ok {
		s[0] = status
	}
}

// writeBackRX completes an RX descriptor: length + DD|EOP status.
func (p *Port) writeBackRX(descAddr uint64, length uint16) {
	if s, ok := p.dmaRW(descAddr+8, 8); ok {
		binary.LittleEndian.PutUint16(s[0:2], length)
		s[2], s[3] = 0, 0 // checksum (unused)
		s[4] = StatDD | StatEOP
		s[5] = 0 // errors
	}
}

// Missed returns the RX FIFO tail-drop count (MPC).
func (p *Port) Missed() uint64 { return p.fifo.missedCount() }

// PendingRX reports frames waiting in the RX FIFO (testing hook).
func (p *Port) PendingRX() int { return p.fifo.pending() }
