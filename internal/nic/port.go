package nic

import (
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/cheri"
	"repro/internal/hostos"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
)

// wireOverhead is the per-frame on-the-wire overhead beyond the frame
// bytes handed to the device: preamble+SFD (8) + FCS (4) + inter-frame
// gap (12). With 1538 wire bytes per 1448-byte TCP payload this yields
// the canonical 941 Mbit/s GbE goodput ceiling.
const wireOverhead = 24

// maxBurst bounds ring processing per Step call (per queue).
const maxBurst = 64

// maxFrame is the largest frame the device accepts (MTU 1500 plus
// Ethernet header; no jumbo support, like the paper's setup).
const maxFrame = 1514

// Port is one Ethernet port (one PCI function) of a card. It implements
// hostos.PCIDevice.
type Port struct {
	card  *Card
	idx   int
	bdf   string
	mac   [6]byte
	clk   hostos.Clock
	mem   *cheri.TMem
	arena *FrameArena
	line  *sim.Serializer

	// fifos are the per-RX-queue slices of the receive packet buffer;
	// the RSS classifier picks one per arriving frame (queue 0 when RSS
	// is off, so the single-queue model is unchanged).
	fifos [MaxQueues]rxFifo

	pipe    Conduit
	pipeEnd int

	capDMA bool
	dmaCap cheri.Cap

	mu   sync.Mutex
	regs portRegs

	// Fault injection (the Scenario 10 fault plane). stalled queues are
	// skipped by Step and excluded from NextDeadline (guarded by mu);
	// dmaFaults budgets injected DMA failures consumed by dmaRO/dmaRW —
	// atomics, because the DMA helpers run without p.mu held.
	stalled    [MaxQueues]bool
	dmaFaults  atomic.Int64
	dmaFaulted atomic.Uint64

	// statistics (guarded by mu)
	gprc, gptc uint64 // good packets
	gorc, gotc uint64 // good octets

	// observability sinks (guarded by mu, nil = off; see internal/obs).
	// Every hook below nil-checks its sink, so a port without
	// observability runs the exact datapath it always has.
	obsTr  *obs.Trace
	obsDP  *stats.Histogram
	obsSrc uint16
	rxTap  func(tsNS int64, data []byte)
}

// queueRegs is one RX or TX queue's descriptor-ring register bank.
type queueRegs struct {
	bal, bah, length, head, tail uint32
}

// portRegs is the software-visible register file. Queue 0 of rxq/txq is
// aliased by the legacy RDxx/TDxx offsets.
type portRegs struct {
	ctrl, status uint32
	rctl, tctl   uint32

	rxq [MaxQueues]queueRegs
	txq [MaxQueues]queueRegs

	mrqc   uint32
	reta   [RetaEntries]byte
	rssKey [RSSKeyLen]byte
}

// Attach connects the port to one endpoint of a conduit and raises
// link-up. nic.Connect uses it for the direct cable; impairment
// pipelines (internal/netem) attach themselves the same way.
func (p *Port) Attach(c Conduit, end int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pipe = c
	p.pipeEnd = end
	p.regs.status |= StatusLU
}

// SetObs installs the port's flight recorder and datapath-latency
// histogram (nil disables either); src tags the port's trace events.
func (p *Port) SetObs(tr *obs.Trace, dp *stats.Histogram, src uint16) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.obsTr, p.obsDP, p.obsSrc = tr, dp, src
}

// SetRxTap installs (or, with nil, removes) a delivery observer: fn
// sees every frame the conduit hands this port, before FIFO admission
// — so what the tap captures is exactly what survived the link, and
// impairment drops show as gaps. The tap runs synchronously and must
// not retain data (the bytes return to the frame arena after DMA); a
// pcap writer, which copies into its output stream, is the intended
// consumer.
func (p *Port) SetRxTap(fn func(tsNS int64, data []byte)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rxTap = fn
}

// BDF returns the port's PCI address.
func (p *Port) BDF() string { return p.bdf }

// Arena returns the frame arena this port allocates from and frees to.
// An impairment pipeline attached to the port frees dropped frames into
// the same arena.
func (p *Port) Arena() *FrameArena { return p.arena }

// VendorID returns Intel's PCI vendor id.
func (p *Port) VendorID() uint16 { return 0x8086 }

// DeviceID returns the 82576 device id.
func (p *Port) DeviceID() uint16 { return 0x10C9 }

// MAC returns the port's hardware address.
func (p *Port) MAC() [6]byte { return p.mac }

// SetDMACap grants the port its DMA window (IOMMU programming). Only
// meaningful in capability-DMA mode.
func (p *Port) SetDMACap(c cheri.Cap) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dmaCap = c
}

// queueReg resolves a per-queue bank offset to the queue register it
// addresses, or nil when off is not a queue register.
func (p *Port) queueReg(off uint64) *uint32 {
	var bank *[MaxQueues]queueRegs
	var rel uint64
	switch {
	case off >= RegRXQBase && off < RegRXQBase+MaxQueues*RegQStride:
		bank, rel = &p.regs.rxq, off-RegRXQBase
	case off >= RegTXQBase && off < RegTXQBase+MaxQueues*RegQStride:
		bank, rel = &p.regs.txq, off-RegTXQBase
	default:
		return nil
	}
	q := &bank[rel/RegQStride]
	switch rel % RegQStride {
	case regQBAL:
		return &q.bal
	case regQBAH:
		return &q.bah
	case regQLEN:
		return &q.length
	case regQH:
		return &q.head
	case regQT:
		return &q.tail
	}
	return nil
}

// legacyAlias maps the legacy single-queue offsets onto queue 0's banks.
func legacyAlias(off uint64) (uint64, bool) {
	switch off {
	case RegRDBAL:
		return RegRDBALQ(0), true
	case RegRDBAH:
		return RegRDBAHQ(0), true
	case RegRDLEN:
		return RegRDLENQ(0), true
	case RegRDH:
		return RegRDHQ(0), true
	case RegRDT:
		return RegRDTQ(0), true
	case RegTDBAL:
		return RegTDBALQ(0), true
	case RegTDBAH:
		return RegTDBAHQ(0), true
	case RegTDLEN:
		return RegTDLENQ(0), true
	case RegTDH:
		return RegTDHQ(0), true
	case RegTDT:
		return RegTDTQ(0), true
	}
	return off, false
}

// RegRead32 implements MMIO reads.
func (p *Port) RegRead32(off uint64) uint32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if alias, ok := legacyAlias(off); ok {
		off = alias
	}
	if r := p.queueReg(off); r != nil {
		return *r
	}
	switch {
	case off >= RegRETA && off < RegRETA+RetaEntries:
		i := int(off - RegRETA)
		return binary.LittleEndian.Uint32(p.regs.reta[i : i+4])
	case off >= RegRSSRK && off < RegRSSRK+RSSKeyLen:
		i := int(off - RegRSSRK)
		return binary.LittleEndian.Uint32(p.regs.rssKey[i : i+4])
	}
	switch off {
	case RegCTRL:
		return p.regs.ctrl
	case RegSTATUS:
		return p.regs.status
	case RegRCTL:
		return p.regs.rctl
	case RegTCTL:
		return p.regs.tctl
	case RegMRQC:
		return p.regs.mrqc
	case RegMPC:
		return uint32(p.missedSum())
	case RegGPRC:
		return uint32(p.gprc)
	case RegGPTC:
		return uint32(p.gptc)
	case RegGORCL:
		return uint32(p.gorc)
	case RegGORCH:
		return uint32(p.gorc >> 32)
	case RegGOTCL:
		return uint32(p.gotc)
	case RegGOTCH:
		return uint32(p.gotc >> 32)
	case RegRAL0:
		return uint32(p.mac[0]) | uint32(p.mac[1])<<8 | uint32(p.mac[2])<<16 | uint32(p.mac[3])<<24
	case RegRAH0:
		return uint32(p.mac[4]) | uint32(p.mac[5])<<8 | 1<<31 // AV bit
	default:
		return 0
	}
}

// RegWrite32 implements MMIO writes.
func (p *Port) RegWrite32(off uint64, v uint32) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if alias, ok := legacyAlias(off); ok {
		off = alias
	}
	if r := p.queueReg(off); r != nil {
		*r = v
		return
	}
	switch {
	case off >= RegRETA && off < RegRETA+RetaEntries:
		i := int(off - RegRETA)
		binary.LittleEndian.PutUint32(p.regs.reta[i:i+4], v)
		return
	case off >= RegRSSRK && off < RegRSSRK+RSSKeyLen:
		i := int(off - RegRSSRK)
		binary.LittleEndian.PutUint32(p.regs.rssKey[i:i+4], v)
		return
	}
	switch off {
	case RegCTRL:
		if v&CtrlRST != 0 {
			p.resetLocked()
			return
		}
		p.regs.ctrl = v
	case RegRCTL:
		p.regs.rctl = v
	case RegTCTL:
		p.regs.tctl = v
	case RegMRQC:
		p.regs.mrqc = v
	}
}

// resetLocked clears device state (CTRL.RST).
func (p *Port) resetLocked() {
	lu := p.regs.status & StatusLU
	p.regs = portRegs{status: lu}
	p.gprc, p.gptc, p.gorc, p.gotc = 0, 0, 0, 0
}

// DeliverFrame places an arriving frame in the RX queue the RSS
// classifier selects (the far end of the conduit calls this). readyAt
// is the virtual instant the last bit arrives; the frame becomes
// visible to the RX rings from then on.
func (p *Port) DeliverFrame(data []byte, readyAt int64) {
	p.mu.Lock()
	q := p.classifyLocked(data)
	tap := p.rxTap
	p.mu.Unlock()
	if tap != nil {
		tap(readyAt, data)
	}
	p.fifos[q].push(frame{data: data, readyAt: readyAt})
}

// SetQueueStall freezes (or thaws) one queue pair: a stalled queue's
// TX ring stops draining and its RX FIFO stops filling descriptors, so
// arrivals back up and eventually tail-drop (Missed), exactly like a
// wedged hardware queue. Deterministic: the stall is an instantaneous
// state flip driven from the virtual-time fault plane.
func (p *Port) SetQueueStall(q int, stalled bool) {
	if q < 0 || q >= MaxQueues {
		return
	}
	p.mu.Lock()
	p.stalled[q] = stalled
	p.mu.Unlock()
}

// QueueStalled reports one queue's stall state.
func (p *Port) QueueStalled(q int) bool {
	if q < 0 || q >= MaxQueues {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stalled[q]
}

// InjectDMAFaults arms a burst: the next n DMA mappings (descriptor or
// buffer, either direction) fail as master aborts. The port's existing
// fault paths absorb them — TX bursts stop mid-ring, RX frames drop
// with the descriptor consumed.
func (p *Port) InjectDMAFaults(n int64) {
	if n > 0 {
		p.dmaFaults.Add(n)
	}
}

// DMAFaulted counts injected DMA faults that have fired.
func (p *Port) DMAFaulted() uint64 { return p.dmaFaulted.Load() }

// dmaFault consumes one unit of the injected-fault budget.
func (p *Port) dmaFault() bool {
	if p.dmaFaults.Load() <= 0 {
		return false
	}
	p.dmaFaults.Add(-1)
	p.dmaFaulted.Add(1)
	return true
}

// dmaRO maps [addr, addr+n) of host memory for a device read.
func (p *Port) dmaRO(addr uint64, n int) ([]byte, bool) {
	if p.dmaFault() {
		return nil, false
	}
	if p.capDMA {
		s, err := p.mem.CheckedSliceRO(p.dmaCap.SetAddr(addr), addr, n)
		return s, err == nil
	}
	s, err := p.mem.RawSlice(addr, n)
	return s, err == nil
}

// dmaRW maps [addr, addr+n) for a device write, invalidating tags.
func (p *Port) dmaRW(addr uint64, n int) ([]byte, bool) {
	if p.dmaFault() {
		return nil, false
	}
	if p.capDMA {
		s, err := p.mem.CheckedSlice(p.dmaCap.SetAddr(addr), addr, n)
		return s, err == nil
	}
	s, err := p.mem.RawSlice(addr, n)
	if err != nil {
		return nil, false
	}
	p.mem.RawInvalidate(addr, n)
	return s, true
}

// Step advances the device: it drains every armed TX ring onto the wire
// and fills every armed RX ring from its FIFO, under line-rate and
// bus-budget admission. The DPDK poll-mode driver calls it from every
// burst — it is the simulator's hottest path, so the armed-queue scan
// happens under one lock acquisition and unarmed queues cost nothing.
func (p *Port) Step() {
	var tx, rx [MaxQueues]bool
	p.mu.Lock()
	pipe := p.pipe
	txEn := p.regs.tctl&TctlEN != 0 && pipe != nil
	rxEn := p.regs.rctl&RctlEN != 0
	for q := 0; q < MaxQueues; q++ {
		tx[q] = txEn && p.regs.txq[q].length >= DescSize && !p.stalled[q]
		rx[q] = rxEn && p.regs.rxq[q].length >= DescSize && !p.stalled[q]
	}
	p.mu.Unlock()
	if pipe != nil {
		// Let a frame-holding conduit (netem delay line, rate limiter)
		// release whatever is due before the RX rings look for arrivals.
		pipe.Pump(p.clk.Now())
	}
	for q := 0; q < MaxQueues; q++ {
		if tx[q] {
			p.stepTX(q)
		}
	}
	for q := 0; q < MaxQueues; q++ {
		if rx[q] {
			p.stepRX(q)
		}
	}
}

// DrainTXThrough transmits as many pending descriptors as the line and
// bus will admit on queues 0..maxQ, in queue-index order, looping past
// stepTX's per-call burst cap, and reports whether queue maxQ's head
// advanced. It touches only the TX path — no conduit pump, no RX ring
// fill — so it is safe to run while other queues' software rings are
// being driven concurrently.
//
// The parallel shard runner calls it when a shard's TX ring fills
// mid-instant: the sequential driver would have drained the ring
// continuously while the shard ran, and because virtual time is frozen
// and earlier shards' frames all book before later ones', draining
// queues 0..q at the stall point books the identical line schedule and
// reproduces the exact descriptor-ring backpressure the sequential
// stack would have seen.
func (p *Port) DrainTXThrough(maxQ int) bool {
	if maxQ >= MaxQueues {
		maxQ = MaxQueues - 1
	}
	progress := false
	for q := 0; q <= maxQ; q++ {
		for {
			p.mu.Lock()
			before := p.regs.txq[q].head
			p.mu.Unlock()
			p.stepTX(q)
			p.mu.Lock()
			moved := p.regs.txq[q].head != before
			p.mu.Unlock()
			if !moved {
				break
			}
			if q == maxQ {
				progress = true
			}
		}
	}
	return progress
}

// stepTX transmits queue q's descriptors [TDH, TDT).
func (p *Port) stepTX(q int) {
	p.mu.Lock()
	if p.regs.tctl&TctlEN == 0 || p.pipe == nil || p.stalled[q] {
		p.mu.Unlock()
		return
	}
	qr := &p.regs.txq[q]
	base := uint64(qr.bal) | uint64(qr.bah)<<32
	n := qr.length / DescSize
	head, tail := qr.head, qr.tail
	tr, src := p.obsTr, p.obsSrc
	p.mu.Unlock()
	if n == 0 {
		return
	}

	// Stats batch per burst: taking p.mu twice per transmitted frame
	// was measurable lock churn on the simulator's hottest path.
	var sentFrames, sentBytes uint64
	for burst := 0; burst < maxBurst && head != tail; burst++ {
		descAddr := base + uint64(head)*DescSize
		desc, ok := p.dmaRO(descAddr, DescSize)
		if !ok {
			// DMA fault: silently stop, like a master abort. Deliberate
			// change from the pre-batching code, which returned without
			// committing head — frames sent before a mid-burst fault
			// were re-read and re-transmitted on the next step; now
			// their head advance (and stats) are written back below.
			break
		}
		bufAddr := binary.LittleEndian.Uint64(desc[0:8])
		length := int(binary.LittleEndian.Uint16(desc[8:10]))
		cmd := desc[11]
		if length == 0 || length > maxFrame || cmd&TxCmdEOP == 0 {
			// Malformed descriptor: consume it without transmitting.
			p.writeBackStatus(descAddr, StatDD)
			head = (head + 1) % n
			continue
		}
		// Admission: the line must have room AND the bus must have
		// budget for the DMA read.
		if !p.line.CanAdmit() || !p.card.busCanAdmit(p.idx) {
			break
		}
		buf, ok := p.dmaRO(bufAddr, length)
		if !ok {
			p.writeBackStatus(descAddr, StatDD)
			head = (head + 1) % n
			continue
		}
		doneAt, _ := p.line.Admit(length + wireOverhead)
		p.card.busAdmit(p.idx, int(p.card.cfg.BusCostTX*float64(length+wireOverhead)))
		data := p.arena.Alloc(length)
		copy(data, buf)
		p.pipe.Send(p.pipeEnd, data, doneAt+PropagationDelayNS)

		p.writeBackStatus(descAddr, StatDD)
		head = (head + 1) % n
		sentFrames++
		sentBytes += uint64(length)
	}
	if sentFrames > 0 && tr != nil {
		tr.Record(p.clk.Now(), obs.EvNicTxBurst, src, int64(sentFrames), int64(sentBytes), int64(q))
	}
	p.mu.Lock()
	p.gptc += sentFrames
	p.gotc += sentBytes
	p.regs.txq[q].head = head
	p.mu.Unlock()
}

// stepRX moves queue q's fully arrived frames into descriptors
// [RDH, RDT).
func (p *Port) stepRX(q int) {
	p.mu.Lock()
	if p.regs.rctl&RctlEN == 0 || p.stalled[q] {
		p.mu.Unlock()
		return
	}
	qr := &p.regs.rxq[q]
	base := uint64(qr.bal) | uint64(qr.bah)<<32
	n := qr.length / DescSize
	head, tail := qr.head, qr.tail
	tr, dp, src := p.obsTr, p.obsDP, p.obsSrc
	p.mu.Unlock()
	if n == 0 {
		return
	}

	now := p.clk.Now()
	var gotFrames, gotBytes uint64
	for burst := 0; burst < maxBurst && head != tail; burst++ {
		// Bus budget gate BEFORE popping, so refused frames stay queued.
		if !p.card.busCanAdmit(p.idx) {
			break
		}
		fr, ok := p.fifos[q].pop(now)
		if !ok {
			break
		}
		descAddr := base + uint64(head)*DescSize
		desc, ok := p.dmaRO(descAddr, DescSize)
		if !ok {
			p.arena.Free(fr.data) // popped, so ours to release
			break
		}
		bufAddr := binary.LittleEndian.Uint64(desc[0:8])
		dst, ok := p.dmaRW(bufAddr, len(fr.data))
		if !ok {
			// Bad buffer: drop the frame, consume the descriptor.
			p.arena.Free(fr.data)
			p.writeBackRX(descAddr, 0)
			head = (head + 1) % n
			continue
		}
		copy(dst, fr.data)
		p.card.busAdmit(p.idx, int(p.card.cfg.BusCostRX*float64(len(fr.data)+wireOverhead)))
		p.writeBackRX(descAddr, uint16(len(fr.data)))
		head = (head + 1) % n
		gotFrames++
		gotBytes += uint64(len(fr.data))
		if dp != nil {
			// Datapath latency: last bit on the wire to DMA completion
			// (FIFO residence + bus admission).
			dp.Record(now - fr.readyAt)
		}
		// The frame now lives in descriptor memory; its wire buffer
		// returns to the arena (see the ownership contract in arena.go).
		p.arena.Free(fr.data)
	}
	if gotFrames > 0 && tr != nil {
		tr.Record(now, obs.EvNicRxBurst, src, int64(gotFrames), int64(gotBytes), int64(q))
	}
	p.mu.Lock()
	p.gprc += gotFrames
	p.gorc += gotBytes
	p.regs.rxq[q].head = head
	p.mu.Unlock()
}

// writeBackStatus sets the status byte of a TX descriptor.
func (p *Port) writeBackStatus(descAddr uint64, status byte) {
	if s, ok := p.dmaRW(descAddr+12, 1); ok {
		s[0] = status
	}
}

// writeBackRX completes an RX descriptor: length + DD|EOP status.
func (p *Port) writeBackRX(descAddr uint64, length uint16) {
	if s, ok := p.dmaRW(descAddr+8, 8); ok {
		binary.LittleEndian.PutUint16(s[0:2], length)
		s[2], s[3] = 0, 0 // checksum (unused)
		s[4] = StatDD | StatEOP
		s[5] = 0 // errors
	}
}

// missedSum sums the per-queue tail-drop counters (the FIFOs carry
// their own locks, so this is safe with or without p.mu held).
func (p *Port) missedSum() uint64 {
	var total uint64
	for q := range p.fifos {
		total += p.fifos[q].missedCount()
	}
	return total
}

// Missed returns the RX FIFO tail-drop count (MPC), summed over queues.
func (p *Port) Missed() uint64 { return p.missedSum() }

// PendingRX reports frames waiting in the RX FIFOs (testing hook).
func (p *Port) PendingRX() int {
	total := 0
	for q := range p.fifos {
		total += p.fifos[q].pending()
	}
	return total
}

// PendingRXQueue reports frames waiting in one queue's FIFO (testing
// hook).
func (p *Port) PendingRXQueue(q int) int { return p.fifos[q].pending() }

// NextDeadline reports the earliest virtual instant at or after which
// this port could make progress: the head frame of an armed RX queue
// becoming harvestable, a pending TX descriptor becoming admissible on
// the line and the bus, or the attached conduit releasing a held
// frame. math.MaxInt64 means the port holds no time-based work. A
// value <= now means the port has work right now.
//
// The query is side-effect free — in particular it must not touch the
// bus arbiter, whose activity window is part of the simulated machine
// state (see busNextAdmitAt).
func (p *Port) NextDeadline(now int64) int64 {
	p.mu.Lock()
	pipe := p.pipe
	rxEn := p.regs.rctl&RctlEN != 0
	txEn := p.regs.tctl&TctlEN != 0 && pipe != nil
	var rxArmed [MaxQueues]bool
	txPending := false
	for q := 0; q < MaxQueues; q++ {
		// A stalled queue holds no time-based work: excluding it keeps
		// the leaping driver from spinning at `now` on a ring that will
		// not move until the fault plane thaws it.
		rxArmed[q] = rxEn && p.regs.rxq[q].length >= DescSize && !p.stalled[q]
		if txEn && p.regs.txq[q].length >= DescSize && !p.stalled[q] &&
			p.regs.txq[q].head != p.regs.txq[q].tail {
			txPending = true
		}
	}
	p.mu.Unlock()

	d := int64(math.MaxInt64)
	for q := 0; q < MaxQueues; q++ {
		if !rxArmed[q] {
			continue
		}
		if at, ok := p.fifos[q].headReadyAt(); ok && at < d {
			d = at
		}
	}
	if txPending {
		at := p.line.NextAdmitAt(now)
		if busAt := p.card.busNextAdmitAt(p.idx, now); busAt > at {
			at = busAt
		}
		if at < d {
			d = at
		}
	}
	if pipe != nil {
		if at := pipe.NextDeadline(now); at < d {
			d = at
		}
	}
	// On a bus-limited card the polling itself is state: every armed
	// port's Step touches the fair-share arbiter each iteration, and a
	// port that stays silent past busActivityWindow changes the active
	// set (and everyone's rates). Capping the leap at half the window
	// keeps the arbiter's view identical to the tick-stepped driver's.
	if rxEn && p.card.busLimited() {
		if cap := now + busActivityWindow/2; cap < d {
			d = cap
		}
	}
	return d
}
