package nic

// MMIO register offsets (e1000/82576 legacy layout, BAR0).
const (
	RegCTRL   = 0x0000
	RegSTATUS = 0x0008
	RegRCTL   = 0x0100
	RegTCTL   = 0x0400

	RegRDBAL = 0x2800
	RegRDBAH = 0x2804
	RegRDLEN = 0x2808
	RegRDH   = 0x2810
	RegRDT   = 0x2818

	RegTDBAL = 0x3800
	RegTDBAH = 0x3804
	RegTDLEN = 0x3808
	RegTDH   = 0x3810
	RegTDT   = 0x3818

	// Statistics (read-only; clear-on-read is NOT modelled).
	RegMPC   = 0x4010 // missed packets (RX ring full)
	RegGPRC  = 0x4074 // good packets received
	RegGPTC  = 0x4080 // good packets transmitted
	RegGORCL = 0x4088 // good octets received, low
	RegGORCH = 0x408C // good octets received, high
	RegGOTCL = 0x4090 // good octets transmitted, low
	RegGOTCH = 0x4094 // good octets transmitted, high

	// Receive-address registers (MAC address of the port).
	RegRAL0 = 0x5400
	RegRAH0 = 0x5404
)

// CTRL bits.
const (
	CtrlSLU = 1 << 6  // set link up
	CtrlRST = 1 << 26 // device reset
)

// STATUS bits.
const (
	StatusLU = 1 << 1 // link up
)

// RCTL/TCTL bits.
const (
	RctlEN = 1 << 1
	TctlEN = 1 << 1
)

// Descriptor layout constants (legacy descriptors).
const (
	// DescSize is the size of one RX or TX descriptor.
	DescSize = 16

	// TX command bits.
	TxCmdEOP = 1 << 0 // end of packet
	TxCmdRS  = 1 << 3 // report status (write DD back)

	// Status bits (both rings).
	StatDD  = 1 << 0 // descriptor done
	StatEOP = 1 << 1 // end of packet (RX)
)
