package nic

// MMIO register offsets (e1000/82576 legacy layout, BAR0).
const (
	RegCTRL   = 0x0000
	RegSTATUS = 0x0008
	RegRCTL   = 0x0100
	RegTCTL   = 0x0400

	RegRDBAL = 0x2800
	RegRDBAH = 0x2804
	RegRDLEN = 0x2808
	RegRDH   = 0x2810
	RegRDT   = 0x2818

	RegTDBAL = 0x3800
	RegTDBAH = 0x3804
	RegTDLEN = 0x3808
	RegTDH   = 0x3810
	RegTDT   = 0x3818

	// Statistics (read-only; clear-on-read is NOT modelled).
	RegMPC   = 0x4010 // missed packets (RX ring full)
	RegGPRC  = 0x4074 // good packets received
	RegGPTC  = 0x4080 // good packets transmitted
	RegGORCL = 0x4088 // good octets received, low
	RegGORCH = 0x408C // good octets received, high
	RegGOTCL = 0x4090 // good octets transmitted, low
	RegGOTCH = 0x4094 // good octets transmitted, high

	// Receive-address registers (MAC address of the port).
	RegRAL0 = 0x5400
	RegRAH0 = 0x5404

	// Multiple receive queues command (RSS enable + queue count).
	RegMRQC = 0x5818
	// RSS redirection table: 32 dwords of four 1-byte queue entries.
	RegRETA = 0x5C00
	// RSS random key: 10 dwords (40 bytes).
	RegRSSRK = 0x5C80
)

// MRQC fields. The queue-count field is a simulation convenience (the
// real device derives it from RCTL/PSRTYPE); software writes the number
// of RX queues RSS may select from.
const (
	MRQCEnable     = 1 << 0
	MRQCQueueShift = 8
)

// Per-queue register banks (82576-style). Queue 0's bank aliases the
// legacy RDxx/TDxx offsets above, so single-queue drivers are oblivious.
const (
	RegRXQBase = 0xC000
	RegTXQBase = 0xE000
	RegQStride = 0x40

	regQBAL = 0x00
	regQBAH = 0x04
	regQLEN = 0x08
	regQH   = 0x10
	regQT   = 0x18
)

// RegRDBALQ returns the RX descriptor base-low register of queue q.
func RegRDBALQ(q int) uint64 { return RegRXQBase + uint64(q)*RegQStride + regQBAL }

// RegRDBAHQ returns the RX descriptor base-high register of queue q.
func RegRDBAHQ(q int) uint64 { return RegRXQBase + uint64(q)*RegQStride + regQBAH }

// RegRDLENQ returns the RX ring length register of queue q.
func RegRDLENQ(q int) uint64 { return RegRXQBase + uint64(q)*RegQStride + regQLEN }

// RegRDHQ returns the RX head register of queue q.
func RegRDHQ(q int) uint64 { return RegRXQBase + uint64(q)*RegQStride + regQH }

// RegRDTQ returns the RX tail register of queue q.
func RegRDTQ(q int) uint64 { return RegRXQBase + uint64(q)*RegQStride + regQT }

// RegTDBALQ returns the TX descriptor base-low register of queue q.
func RegTDBALQ(q int) uint64 { return RegTXQBase + uint64(q)*RegQStride + regQBAL }

// RegTDBAHQ returns the TX descriptor base-high register of queue q.
func RegTDBAHQ(q int) uint64 { return RegTXQBase + uint64(q)*RegQStride + regQBAH }

// RegTDLENQ returns the TX ring length register of queue q.
func RegTDLENQ(q int) uint64 { return RegTXQBase + uint64(q)*RegQStride + regQLEN }

// RegTDHQ returns the TX head register of queue q.
func RegTDHQ(q int) uint64 { return RegTXQBase + uint64(q)*RegQStride + regQH }

// RegTDTQ returns the TX tail register of queue q.
func RegTDTQ(q int) uint64 { return RegTXQBase + uint64(q)*RegQStride + regQT }

// CTRL bits.
const (
	CtrlSLU = 1 << 6  // set link up
	CtrlRST = 1 << 26 // device reset
)

// STATUS bits.
const (
	StatusLU = 1 << 1 // link up
)

// RCTL/TCTL bits.
const (
	RctlEN = 1 << 1
	TctlEN = 1 << 1
)

// Descriptor layout constants (legacy descriptors).
const (
	// DescSize is the size of one RX or TX descriptor.
	DescSize = 16

	// TX command bits.
	TxCmdEOP = 1 << 0 // end of packet
	TxCmdRS  = 1 << 3 // report status (write DD back)

	// Status bits (both rings).
	StatDD  = 1 << 0 // descriptor done
	StatEOP = 1 << 1 // end of packet (RX)
)
