package nic

import "encoding/binary"

// Receive-side scaling (RSS), 82576-style: the device hashes each
// arriving IPv4 frame's flow tuple with a Toeplitz hash, indexes a
// 128-entry redirection table (RETA) with the low 7 hash bits, and
// places the frame in the RX queue the entry names. Non-IP traffic
// (ARP) and anything the hash does not cover lands in queue 0, which
// therefore must always be served.
//
// The driver programs the 40-byte hash key through RSSRK, the table
// through RETA, and enables the engine through MRQC. With MRQC disabled
// (reset state) every frame goes to queue 0 and the device behaves
// exactly like the single-queue model it grew out of.

// MaxQueues is the number of RX/TX queue pairs the device exposes (the
// real 82576 has 16; 8 is plenty for the scaling scenarios).
const MaxQueues = 8

// RSSKeyLen is the Toeplitz key size in bytes (RSSRK is 10 dwords).
const RSSKeyLen = 40

// RetaEntries is the redirection table size (32 dwords of 4 entries).
const RetaEntries = 128

// ToeplitzHash computes the RSS Toeplitz hash of data under key: for
// every set bit i of the input, XOR in the 32-bit window of the key
// starting at bit i.
func ToeplitzHash(key, data []byte) uint32 {
	var h uint32
	for i, b := range data {
		for bit := 0; bit < 8; bit++ {
			if b&(0x80>>bit) != 0 {
				h ^= keyWindow(key, i*8+bit)
			}
		}
	}
	return h
}

// keyWindow extracts 32 key bits starting at bit offset off (bits are
// numbered MSB-first, as the RSS specification does).
func keyWindow(key []byte, off int) uint32 {
	byteOff, shift := off/8, off%8
	var v uint64
	for j := 0; j < 5; j++ {
		v <<= 8
		if byteOff+j < len(key) {
			v |= uint64(key[byteOff+j])
		}
	}
	return uint32(v >> (8 - shift))
}

// DefaultRSSKey returns the well-known Microsoft verification key, the
// full-entropy default every RSS driver ships. Symmetry does NOT come
// from the key (the repeating-0x6d5a "symmetric key" trick collapses
// the hash space badly — adjacent port pairs land on two queues out of
// eight): it comes from the canonical endpoint ordering RSSHashTuple
// applies before hashing, the same construction as DPDK's
// symmetric_toeplitz hash function.
func DefaultRSSKey() [RSSKeyLen]byte {
	return [RSSKeyLen]byte{
		0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2,
		0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
		0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4,
		0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
		0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
	}
}

// endpointLess orders (ip, port) endpoints lexicographically.
func endpointLess(aIP [4]byte, aPort uint16, bIP [4]byte, bPort uint16) bool {
	for i := range aIP {
		if aIP[i] != bIP[i] {
			return aIP[i] < bIP[i]
		}
	}
	return aPort < bPort
}

// RSSHashTuple hashes an IPv4 flow tuple the way the device hashes an
// arriving frame: 4-tuple for TCP/UDP, 2-tuple for other IP protocols.
// The endpoints are put in canonical (smaller-first) order before
// hashing, so hash(src,dst,sport,dport) == hash(dst,src,dport,sport)
// and both directions of a flow select the same queue — which is what
// lets a sharded stack keep a connection's whole lifecycle on one
// shard.
func RSSHashTuple(key []byte, src, dst [4]byte, proto byte, sport, dport uint16) uint32 {
	if !endpointLess(src, sport, dst, dport) {
		src, dst = dst, src
		sport, dport = dport, sport
	}
	var in [12]byte
	copy(in[0:4], src[:])
	copy(in[4:8], dst[:])
	if proto == protoTCP || proto == protoUDP {
		binary.BigEndian.PutUint16(in[8:10], sport)
		binary.BigEndian.PutUint16(in[10:12], dport)
		return ToeplitzHash(key, in[:12])
	}
	return ToeplitzHash(key, in[:8])
}

// IP protocol numbers the hash engine distinguishes.
const (
	protoTCP = 6
	protoUDP = 17
)

// Frame-parse offsets for the classifier (Ethernet II + IPv4).
const (
	etherTypeOff  = 12
	etherTypeIPv4 = 0x0800
	ipHeaderOff   = 14
)

// classifyLocked maps a received frame to its RX queue per the current
// RSS configuration. Callers hold p.mu.
func (p *Port) classifyLocked(data []byte) int {
	if p.regs.mrqc&MRQCEnable == 0 {
		return 0
	}
	nq := int(p.regs.mrqc>>MRQCQueueShift) & 0xF
	if nq > MaxQueues {
		nq = MaxQueues // defensive: the field is wider than the device
	}
	if nq <= 1 {
		return 0
	}
	// Non-IP (ARP, LLDP, ...) or truncated: queue 0.
	if len(data) < ipHeaderOff+IPv4MinHeader ||
		binary.BigEndian.Uint16(data[etherTypeOff:]) != etherTypeIPv4 {
		return 0
	}
	ip := data[ipHeaderOff:]
	ihl := int(ip[0]&0x0F) * 4
	if ihl < IPv4MinHeader || len(ip) < ihl {
		return 0
	}
	proto := ip[9]
	var src, dst [4]byte
	copy(src[:], ip[12:16])
	copy(dst[:], ip[16:20])
	var sport, dport uint16
	if (proto == protoTCP || proto == protoUDP) && len(ip) >= ihl+4 {
		sport = binary.BigEndian.Uint16(ip[ihl:])
		dport = binary.BigEndian.Uint16(ip[ihl+2:])
	}
	h := RSSHashTuple(p.regs.rssKey[:], src, dst, proto, sport, dport)
	q := int(p.regs.reta[h&(RetaEntries-1)])
	if q >= nq {
		q = 0
	}
	return q
}

// IPv4MinHeader is the minimum IPv4 header length the classifier needs.
const IPv4MinHeader = 20
