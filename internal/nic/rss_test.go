package nic

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

// TestToeplitzMicrosoftVectors checks the hash against the published
// RSS verification-suite vectors for the default key (IPv4 with ports:
// input = src addr | dst addr | src port | dst port).
func TestToeplitzMicrosoftVectors(t *testing.T) {
	key := DefaultRSSKey()
	cases := []struct {
		src, dst     [4]byte
		sport, dport uint16
		want         uint32
	}{
		{[4]byte{66, 9, 149, 187}, [4]byte{161, 142, 100, 80}, 2794, 1766, 0x51ccc178},
		{[4]byte{199, 92, 111, 2}, [4]byte{65, 69, 140, 83}, 14230, 4739, 0xc626b0ea},
		{[4]byte{24, 19, 198, 95}, [4]byte{12, 22, 207, 184}, 12898, 38024, 0x5c2b394a},
		{[4]byte{38, 27, 205, 30}, [4]byte{209, 142, 163, 6}, 48228, 2217, 0xafc7327f},
		{[4]byte{153, 39, 163, 191}, [4]byte{202, 188, 127, 2}, 44251, 1303, 0x10e828a2},
	}
	for _, c := range cases {
		var in [12]byte
		copy(in[0:4], c.src[:])
		copy(in[4:8], c.dst[:])
		binary.BigEndian.PutUint16(in[8:10], c.sport)
		binary.BigEndian.PutUint16(in[10:12], c.dport)
		if got := ToeplitzHash(key[:], in[:]); got != c.want {
			t.Errorf("toeplitz(%v:%d -> %v:%d) = %08x, want %08x",
				c.src, c.sport, c.dst, c.dport, got, c.want)
		}
	}
}

// TestRSSHashSymmetric is the steering invariant the sharded stack
// rests on: both directions of any flow produce the same hash, hence
// the same queue, hence the same shard.
func TestRSSHashSymmetric(t *testing.T) {
	key := DefaultRSSKey()
	f := func(src, dst [4]byte, proto byte, sport, dport uint16) bool {
		a := RSSHashTuple(key[:], src, dst, proto, sport, dport)
		b := RSSHashTuple(key[:], dst, src, proto, dport, sport)
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Fatal(err)
	}
}

// TestRSSHashDeterministic: the hash is a pure function of the tuple.
func TestRSSHashDeterministic(t *testing.T) {
	key := DefaultRSSKey()
	f := func(src, dst [4]byte, sport, dport uint16) bool {
		a := RSSHashTuple(key[:], src, dst, 6, sport, dport)
		b := RSSHashTuple(key[:], src, dst, 6, sport, dport)
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestRSSHashSpread: random tuples must use the whole queue range
// reasonably evenly (the repeating-key construction this replaced put
// everything on a quarter of the queues).
func TestRSSHashSpread(t *testing.T) {
	key := DefaultRSSKey()
	const nq = 8
	counts := make([]int, nq)
	var seed uint32 = 1
	next := func() uint32 { seed = seed*1664525 + 1013904223; return seed }
	const n = 8192
	for i := 0; i < n; i++ {
		var src, dst [4]byte
		binary.BigEndian.PutUint32(src[:], next())
		binary.BigEndian.PutUint32(dst[:], next())
		h := RSSHashTuple(key[:], src, dst, 6, uint16(next()), uint16(next()))
		counts[int(h&(RetaEntries-1))%nq]++
	}
	for q, c := range counts {
		if c < n/nq/2 || c > n/nq*2 {
			t.Fatalf("queue %d got %d of %d flows; distribution %v", q, c, n, counts)
		}
	}
}
