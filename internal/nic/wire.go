package nic

import (
	"math"
	"sync"
)

// PropagationDelayNS is the cable's one-way latency. A metre of copper
// plus PHY latency is well under a microsecond; 500 ns is representative.
const PropagationDelayNS = 500

// RxFifoBytes is the per-port receive packet buffer. The 82576 has a
// 64 KiB RX packet buffer per port; arrivals beyond it are tail-dropped
// and counted in MPC, which is what gives TCP its congestion signal when
// the PCI bus (not the line) is the bottleneck.
const RxFifoBytes = 64 * 1024

// frame is a packet in flight: the bytes plus the virtual instant the
// last bit arrives at the receiver.
type frame struct {
	data    []byte
	readyAt int64
}

// rxFifo is a port's receive packet buffer.
type rxFifo struct {
	mu     sync.Mutex
	frames []frame
	bytes  int
	limit  int
	missed uint64
	arena  *FrameArena // where tail-dropped frames return; nil = default
}

// push stores an arriving frame, tail-dropping when the buffer is full.
func (f *rxFifo) push(fr frame) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.bytes+len(fr.data) > f.limit {
		f.missed++
		arena := f.arena
		if arena == nil {
			arena = defaultArena
		}
		arena.Free(fr.data)
		return
	}
	f.frames = append(f.frames, fr)
	f.bytes += len(fr.data)
}

// pop removes the next fully arrived frame, if any.
func (f *rxFifo) pop(now int64) (frame, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.frames) == 0 || f.frames[0].readyAt > now {
		return frame{}, false
	}
	fr := f.frames[0]
	copy(f.frames, f.frames[1:])
	f.frames = f.frames[:len(f.frames)-1]
	f.bytes -= len(fr.data)
	return fr, true
}

// missedCount returns the tail-drop counter.
func (f *rxFifo) missedCount() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.missed
}

// pending reports queued frames (testing hook).
func (f *rxFifo) pending() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.frames)
}

// headReadyAt reports when the FIFO's head frame becomes harvestable.
// The buffer is strictly first-in-first-out — pop only ever looks at
// the head — so the head's arrival instant IS the queue's deadline
// even if a later frame happens to be due earlier.
func (f *rxFifo) headReadyAt() (int64, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.frames) == 0 {
		return 0, false
	}
	return f.frames[0].readyAt, true
}

// Conduit is the medium a port transmits into. A *Wire is the direct
// back-to-back cable; internal/netem's Link interposes an impairment
// pipeline between the same two ports. The port calls Send with the
// instant the last bit leaves its serializer (propagation already
// added) and calls Pump from every device step so a conduit that holds
// frames (delay lines, rate limiters) can release the ones now due.
//
// Ownership: `data` passes to the receiving side on Send — the
// consumer (the far port's RX path, or the conduit itself when it
// drops the frame) returns it to the frame arena via FreeFrame, so a
// caller must not retain the slice afterward. Beware in particular of
// hand-built full-MTU (1514-byte-cap) buffers: FreeFrame recognizes
// arena frames by that capacity and would recycle them.
type Conduit interface {
	// Send carries one frame away from endpoint `from` (0 or 1).
	Send(from int, data []byte, readyAt int64)
	// Pump delivers any held frames that are due at virtual time now.
	Pump(now int64)
	// NextDeadline reports the earliest instant a held frame becomes
	// due, or math.MaxInt64 for a conduit holding nothing. Part of the
	// interface so a frame-holding conduit that forgets it fails to
	// compile instead of silently reading as quiescent to the
	// event-driven clock.
	NextDeadline(now int64) int64
}

// Wire is a full-duplex point-to-point Ethernet cable: frames sent by
// one port land in the other port's RX FIFO after the propagation delay
// (already folded into readyAt by the sender). It holds nothing, so its
// Pump is a no-op.
type Wire struct {
	ends [2]*Port
}

// Connect wires two ports back to back and raises link-up on both.
func Connect(a, b *Port) *Wire {
	w := &Wire{ends: [2]*Port{a, b}}
	a.Attach(w, 0)
	b.Attach(w, 1)
	return w
}

// Send forwards a frame from endpoint `from` to the peer, whose RSS
// classifier picks the destination RX FIFO.
func (w *Wire) Send(from int, data []byte, readyAt int64) {
	w.ends[1-from].DeliverFrame(data, readyAt)
}

// Pump implements Conduit; a plain cable never holds frames.
func (w *Wire) Pump(int64) {}

// NextDeadline implements Conduit; a plain cable holds nothing.
func (w *Wire) NextDeadline(int64) int64 { return math.MaxInt64 }
