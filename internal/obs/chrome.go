package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// ChromeEvent is one record of the Chrome trace-event format (the JSON
// `about:tracing` and Perfetto load). Exported so tests can round-trip
// the exporter's output through encoding/json.
type ChromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the top-level trace-event JSON object.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// chromeLayers orders the layer lanes top to bottom as the data flows.
var chromeLayers = []string{"app", "fstack", "dpdk", "nic", "netem", "intravisor"}

func chromeTID(layer string) int {
	for i, l := range chromeLayers {
		if l == layer {
			return i + 1
		}
	}
	return len(chromeLayers) + 1
}

// chromeArgs decodes an event's A/B/C into named arguments per type.
func chromeArgs(e Event) map[string]any {
	a := map[string]any{"src": int(e.Src)}
	switch e.Type {
	case EvNetemEnqueue:
		a["bytes"], a["deliver_at_ns"], a["held"] = e.A, e.B, e.C
	case EvNetemDrop:
		kind := "iid"
		switch e.B {
		case DropBurst:
			kind = "burst"
		case DropQueue:
			kind = "queue"
		}
		a["bytes"], a["kind"] = e.A, kind
	case EvNicTxBurst, EvNicRxBurst:
		a["frames"], a["bytes"], a["queue"] = e.A, e.B, e.C
	case EvDevRxBurst, EvDevTxBurst:
		a["frames"], a["queue"] = e.A, e.C
	case EvTCPState:
		a["from"], a["to"], a["port"] = e.A, e.B, e.C
	case EvTCPRetransmit:
		kind := "rto"
		switch e.A {
		case RetxFast:
			kind = "fast"
		case RetxSACK:
			kind = "sack"
		}
		a["kind"], a["seq"], a["port"] = kind, e.B, e.C
	case EvTCPCwnd:
		a["cwnd"], a["port"] = e.A, e.C
	case EvTCPAccept:
		a["queue_depth"], a["half_open"], a["port"] = e.A, e.B, e.C
	case EvTCPSynDrop:
		reason := "backlog"
		switch e.A {
		case SynDropCache:
			reason = "cache"
		case SynDropOverflow:
			reason = "overflow"
		}
		a["reason"], a["queue_depth"], a["port"] = reason, e.B, e.C
	case EvGateCrossing:
		a["crossings"] = e.A
	case EvUDPDrop:
		a["bytes"], a["queue_depth"], a["port"] = e.A, e.B, e.C
	case EvAppRequest:
		kind := "http"
		switch e.C {
		case ReqDNS:
			kind = "dns"
		case ReqTimeout:
			kind = "timeout"
		}
		a["latency_ns"], a["bytes"], a["kind"] = e.A, e.B, kind
	}
	return a
}

// ChromeEvents converts the trace's current contents to trace-event
// records: metadata naming one lane per layer, then every event as an
// instant — except cwnd changes, which become a per-connection counter
// series so Perfetto draws the congestion window as a curve.
func (t *Trace) ChromeEvents() []ChromeEvent {
	events := t.Snapshot()
	out := make([]ChromeEvent, 0, len(events)+len(chromeLayers))
	for _, layer := range chromeLayers {
		out = append(out, ChromeEvent{
			Name:  "thread_name",
			Phase: "M",
			PID:   1,
			TID:   chromeTID(layer),
			Args:  map[string]any{"name": layer},
		})
	}
	for _, e := range events {
		ce := ChromeEvent{
			Name: e.Type.String(),
			TS:   float64(e.TS) / 1e3,
			PID:  1,
			TID:  chromeTID(e.Type.Layer()),
			Args: chromeArgs(e),
		}
		if e.Type == EvTCPCwnd {
			ce.Phase = "C"
			ce.Name = fmt.Sprintf("cwnd src=%d port=%d", e.Src, e.C)
			ce.Args = map[string]any{"cwnd": e.A}
		} else {
			ce.Phase = "i"
			ce.Scope = "t"
		}
		out = append(out, ce)
	}
	return out
}

// WriteChromeTrace streams the trace as Chrome trace-event JSON,
// loadable in about:tracing and Perfetto.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	doc := ChromeTrace{TraceEvents: t.ChromeEvents(), DisplayTimeUnit: "ns"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
