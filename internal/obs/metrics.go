package obs

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a named monotonic metric. Add is atomic, so datapath code
// may bump it without holding any lock; the sampler reads it into the
// timeseries cumulatively.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the counter.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Metrics is the registry: named gauges (sampled by calling back) and
// counters (sampled cumulatively), recorded into per-series timeseries
// every SampleNS of virtual time. Registration happens at wiring time;
// Tick runs from the experiment driver, so samples land at
// deterministic virtual instants.
type Metrics struct {
	mu       sync.Mutex
	interval int64
	names    []string
	gauges   []func(now int64) float64
	times    []int64
	rows     [][]float64
	nextAt   int64
	started  bool
}

// NewMetrics builds a registry sampling every intervalNS of virtual
// time (minimum 1 µs).
func NewMetrics(intervalNS int64) *Metrics {
	if intervalNS < 1_000 {
		intervalNS = 1_000
	}
	return &Metrics{interval: intervalNS}
}

// SampleInterval returns the sampling period in ns.
func (m *Metrics) SampleInterval() int64 { return m.interval }

// Gauge registers a named gauge; fn is called at each sample instant
// with the current virtual time. Gauges run on the driver goroutine —
// they may take component locks but must not drive the simulation.
func (m *Metrics) Gauge(name string, fn func(now int64) float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.names = append(m.names, name)
	m.gauges = append(m.gauges, fn)
}

// Counter registers and returns a named counter, sampled as a
// cumulative series.
func (m *Metrics) Counter(name string) *Counter {
	c := &Counter{}
	m.Gauge(name, func(int64) float64 { return float64(c.Value()) })
	return c
}

// Tick samples every registered series when a sample is due. The first
// call anchors the schedule at its `now`.
func (m *Metrics) Tick(now int64) {
	m.mu.Lock()
	if !m.started {
		m.started = true
		m.nextAt = now
	}
	if now < m.nextAt {
		m.mu.Unlock()
		return
	}
	gauges := m.gauges
	m.mu.Unlock()

	// Sample outside the registry lock: gauges may take component
	// locks, and nothing else mutates the registry mid-run.
	row := make([]float64, len(gauges))
	for i, fn := range gauges {
		row[i] = fn(now)
	}

	m.mu.Lock()
	m.times = append(m.times, now)
	m.rows = append(m.rows, row)
	m.nextAt = now + m.interval
	m.mu.Unlock()
}

// NextDeadline reports the next sample instant (now, before the first
// Tick anchors the schedule).
func (m *Metrics) NextDeadline(now int64) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.started {
		return now
	}
	return m.nextAt
}

// Samples returns the number of sample rows recorded.
func (m *Metrics) Samples() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.rows)
}

// Names returns the registered series names, in registration order.
func (m *Metrics) Names() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.names...)
}

// WriteCSV streams the timeseries as CSV: a time_ns column followed by
// one column per series.
func (m *Metrics) WriteCSV(w io.Writer) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"time_ns"}, m.names...)); err != nil {
		return err
	}
	rec := make([]string, 1+len(m.names))
	for i, row := range m.rows {
		rec[0] = strconv.FormatInt(m.times[i], 10)
		for j, v := range row {
			rec[1+j] = formatSample(v)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// formatSample renders a sample compactly: integers without a decimal
// point, everything else with enough digits to round-trip.
func formatSample(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// metricsJSON is the JSON export shape.
type metricsJSON struct {
	IntervalNS int64              `json:"interval_ns"`
	TimesNS    []int64            `json:"times_ns"`
	Series     []metricSeriesJSON `json:"series"`
}

type metricSeriesJSON struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

// WriteJSON streams the timeseries as JSON, one values array per
// series aligned with times_ns.
func (m *Metrics) WriteJSON(w io.Writer) error {
	m.mu.Lock()
	doc := metricsJSON{IntervalNS: m.interval, TimesNS: append([]int64(nil), m.times...)}
	for j, name := range m.names {
		vals := make([]float64, len(m.rows))
		for i, row := range m.rows {
			vals[i] = row[j]
		}
		doc.Series = append(doc.Series, metricSeriesJSON{Name: name, Values: vals})
	}
	m.mu.Unlock()
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// String summarizes the registry for logs.
func (m *Metrics) String() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return fmt.Sprintf("metrics: %d series, %d samples @ %d ns", len(m.names), len(m.rows), m.interval)
}
