// Package obs is the testbed's deterministic observability layer: a
// fixed-capacity flight-recorder trace of typed events, a metrics
// registry sampled into timeseries on the virtual clock, and (via
// internal/stats) latency histograms — all timestamped in virtual
// nanoseconds, so two runs of the same scenario produce bit-identical
// traces.
//
// The discipline that keeps the datapath honest: every hook in the
// packet path is guarded by a nil check on its sink, event records live
// in a preallocated ring, and the zero configuration installs nothing —
// with observability off the simulation's goldens stay byte-identical
// and the frame datapath stays allocation-free.
package obs

import (
	"math"

	"repro/internal/stats"
)

// Obs bundles one testbed's observability sinks. Any field may be nil:
// a nil sink disables that pillar and the hooks guarding on it.
type Obs struct {
	// Trace is the flight recorder (nil = tracing off).
	Trace *Trace
	// Metrics is the sampled gauge/counter registry (nil = off).
	Metrics *Metrics
	// Datapath collects per-frame datapath latency (NIC arrival to DMA
	// completion), in ns.
	Datapath *stats.Histogram
	// RTT collects TCP round-trip samples, in ns, merged across every
	// stack and shard of the bed.
	RTT *stats.Histogram
}

// Tick drives periodic observability work (metrics sampling) at
// virtual time now. Nil-safe, so drivers call it unconditionally.
func (o *Obs) Tick(now int64) {
	if o == nil || o.Metrics == nil {
		return
	}
	o.Metrics.Tick(now)
}

// NextDeadline reports when Tick next has work (the metrics sampler's
// next sample instant), or math.MaxInt64. Nil-safe.
func (o *Obs) NextDeadline(now int64) int64 {
	if o == nil || o.Metrics == nil {
		return math.MaxInt64
	}
	return o.Metrics.NextDeadline(now)
}
