package obs

import (
	"bytes"
	"encoding/binary"
	"encoding/csv"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
)

func TestTraceRingKeepsMostRecent(t *testing.T) {
	tr := NewTrace(0) // clamps to the minimum capacity
	if tr.Capacity() != minTraceCapacity {
		t.Fatalf("capacity %d, want %d", tr.Capacity(), minTraceCapacity)
	}
	n := tr.Capacity() + 10
	for i := 0; i < n; i++ {
		tr.Record(int64(i), EvNicTxBurst, 3, int64(i), 0, 0)
	}
	if tr.Total() != uint64(n) {
		t.Fatalf("total %d, want %d", tr.Total(), n)
	}
	if tr.Len() != tr.Capacity() {
		t.Fatalf("len %d, want full ring %d", tr.Len(), tr.Capacity())
	}
	snap := tr.Snapshot()
	if len(snap) != tr.Capacity() {
		t.Fatalf("snapshot %d events, want %d", len(snap), tr.Capacity())
	}
	// A flight recorder keeps the newest events: the oldest surviving
	// record is event #10, and timestamps are strictly chronological.
	if snap[0].TS != 10 || snap[len(snap)-1].TS != int64(n-1) {
		t.Fatalf("snapshot spans [%d,%d], want [10,%d]", snap[0].TS, snap[len(snap)-1].TS, n-1)
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].TS <= snap[i-1].TS {
			t.Fatalf("snapshot out of order at %d", i)
		}
	}
	// Nil recorder: Record must be a safe no-op (the hooks' contract).
	var nilTr *Trace
	nilTr.Record(1, EvNetemDrop, 0, 0, 0, 0)
}

func TestEventTypeNamesAndLayers(t *testing.T) {
	seen := map[string]bool{}
	for ty := EventType(0); ty < evTypeCount; ty++ {
		if ty.String() == "unknown" || ty.String() == "" {
			t.Fatalf("event type %d has no name", ty)
		}
		if ty.Layer() == "unknown" || ty.Layer() == "" {
			t.Fatalf("event type %d has no layer", ty)
		}
		if !strings.HasPrefix(ty.String(), ty.Layer()) && ty.Layer() != "fstack" && ty.Layer() != "intravisor" {
			t.Fatalf("event name %q does not carry its layer %q", ty, ty.Layer())
		}
		seen[ty.Layer()] = true
	}
	for _, want := range []string{"netem", "nic", "dpdk", "fstack", "intravisor"} {
		if !seen[want] {
			t.Fatalf("no event type covers layer %q", want)
		}
	}
}

// TestChromeTraceRoundTrip writes the exporter's output and reads it
// back through encoding/json — the satellite's contract that the trace
// loads anywhere a JSON parser does.
func TestChromeTraceRoundTrip(t *testing.T) {
	tr := NewTrace(256)
	tr.Record(1_000, EvNetemEnqueue, 7, 1514, 51_000, 3)
	tr.Record(2_000, EvNetemDrop, 7, 1514, DropQueue, 0)
	tr.Record(3_000, EvNicTxBurst, 0, 4, 5_792, 0)
	tr.Record(4_000, EvTCPState, 2, 3, 4, 5401)
	tr.Record(5_000, EvTCPRetransmit, 2, RetxSACK, 123456, 5401)
	tr.Record(6_000, EvTCPCwnd, 2, 28_960, 0, 5401)
	tr.Record(7_000, EvGateCrossing, 0, 42, 0, 0)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("export: %v", err)
	}
	var doc ChromeTrace
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("round-trip unmarshal: %v", err)
	}
	// 5 thread-name metadata records + 7 events.
	if len(doc.TraceEvents) != len(chromeLayers)+7 {
		t.Fatalf("round-tripped %d events, want %d", len(doc.TraceEvents), len(chromeLayers)+7)
	}
	byName := map[string]ChromeEvent{}
	phases := map[string]bool{}
	for _, e := range doc.TraceEvents {
		byName[e.Name] = e
		phases[e.Phase] = true
	}
	if !phases["M"] || !phases["i"] || !phases["C"] {
		t.Fatalf("missing phases in %v", phases)
	}
	drop, ok := byName["netem.drop"]
	if !ok {
		t.Fatalf("netem.drop missing from export")
	}
	if drop.TS != 2.0 { // 2000 ns = 2 µs
		t.Fatalf("drop ts %v µs, want 2", drop.TS)
	}
	if drop.Args["kind"] != "queue" {
		t.Fatalf("drop kind %v, want queue", drop.Args["kind"])
	}
	retx := byName["tcp.retransmit"]
	if retx.Args["kind"] != "sack" {
		t.Fatalf("retransmit kind %v, want sack", retx.Args["kind"])
	}
	// The cwnd counter series carries its value under args.cwnd.
	var cwnd *ChromeEvent
	for i := range doc.TraceEvents {
		if doc.TraceEvents[i].Phase == "C" {
			cwnd = &doc.TraceEvents[i]
		}
	}
	if cwnd == nil || cwnd.Args["cwnd"] != float64(28_960) {
		t.Fatalf("cwnd counter event missing or wrong: %+v", cwnd)
	}
}

func TestMetricsSamplingAndExport(t *testing.T) {
	m := NewMetrics(1_000_000) // 1 ms
	var rising float64
	m.Gauge("rising", func(now int64) float64 { rising++; return rising })
	m.Gauge("time_ms", func(now int64) float64 { return float64(now) / 1e6 })
	c := m.Counter("frames")

	// Before the first tick the sampler wants to run immediately.
	if at := m.NextDeadline(5); at != 5 {
		t.Fatalf("unanchored deadline %d, want now", at)
	}
	for now := int64(0); now <= 5_000_000; now += 250_000 {
		c.Add(10)
		m.Tick(now)
	}
	if m.Samples() != 6 { // t=0,1,2,3,4,5 ms
		t.Fatalf("%d samples, want 6", m.Samples())
	}
	if at := m.NextDeadline(5_000_000); at != 6_000_000 {
		t.Fatalf("deadline %d, want 6 ms", at)
	}

	var buf bytes.Buffer
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatalf("csv: %v", err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("csv parse: %v", err)
	}
	if len(recs) != 7 {
		t.Fatalf("%d csv rows, want header+6", len(recs))
	}
	wantHdr := []string{"time_ns", "rising", "time_ms", "frames"}
	for i, h := range wantHdr {
		if recs[0][i] != h {
			t.Fatalf("csv header %v, want %v", recs[0], wantHdr)
		}
	}
	if recs[1][0] != "0" || recs[2][0] != "1000000" {
		t.Fatalf("csv times %q,%q", recs[1][0], recs[2][0])
	}
	// The counter column is cumulative and non-decreasing.
	first, err1 := strconv.Atoi(recs[1][3])
	last, err2 := strconv.Atoi(recs[6][3])
	if err1 != nil || err2 != nil || first >= last {
		t.Fatalf("counter column not rising: %q -> %q", recs[1][3], recs[6][3])
	}

	buf.Reset()
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatalf("json: %v", err)
	}
	var doc metricsJSON
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("json round-trip: %v", err)
	}
	if doc.IntervalNS != 1_000_000 || len(doc.TimesNS) != 6 || len(doc.Series) != 3 {
		t.Fatalf("json doc shape: %+v", doc)
	}
	if doc.Series[0].Name != "rising" || len(doc.Series[0].Values) != 6 {
		t.Fatalf("series shape: %+v", doc.Series[0])
	}
}

func TestObsNilSafety(t *testing.T) {
	var o *Obs
	o.Tick(100)
	if o.NextDeadline(100) <= 100 {
		t.Fatalf("nil Obs must report no deadline")
	}
	o = &Obs{}
	o.Tick(100)
	if o.NextDeadline(100) <= 100 {
		t.Fatalf("metrics-less Obs must report no deadline")
	}
}

func TestPcapWriterFormat(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewPcapWriter(&buf)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	frame := make([]byte, 60)
	for i := range frame {
		frame[i] = byte(i)
	}
	if err := w.WritePacket(1_500_000_000, frame); err != nil { // t=1.5 s
		t.Fatalf("write: %v", err)
	}
	if w.Count() != 1 || w.Err() != nil {
		t.Fatalf("count/err: %d/%v", w.Count(), w.Err())
	}
	b := buf.Bytes()
	if len(b) != 24+16+60 {
		t.Fatalf("capture length %d", len(b))
	}
	if binary.LittleEndian.Uint32(b[0:]) != pcapMagic {
		t.Fatalf("bad magic")
	}
	if sec := binary.LittleEndian.Uint32(b[24:]); sec != 1 {
		t.Fatalf("ts sec %d, want 1", sec)
	}
	if usec := binary.LittleEndian.Uint32(b[28:]); usec != 500_000 {
		t.Fatalf("ts usec %d, want 500000", usec)
	}
	if caplen := binary.LittleEndian.Uint32(b[32:]); caplen != 60 {
		t.Fatalf("caplen %d", caplen)
	}
}
