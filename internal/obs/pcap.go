package obs

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// pcap file constants (libpcap classic format, microsecond timestamps).
const (
	pcapMagic    = 0xa1b2c3d4
	pcapVerMajor = 2
	pcapVerMinor = 4
	pcapSnaplen  = 65535
	pcapEthernet = 1
)

// PcapWriter streams frames into a libpcap capture readable by tcpdump
// and Wireshark. It began life as fstack's per-stack tap sink and now
// lives here so link-level taps (nic RX delivery, both ends of a peer
// cable into one file) and stack taps share one writer. It is safe for
// concurrent use — taps from multiple components may share one file.
type PcapWriter struct {
	mu  sync.Mutex
	w   io.Writer
	err error
	n   int
}

// NewPcapWriter writes the global header and returns the writer.
func NewPcapWriter(w io.Writer) (*PcapWriter, error) {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], pcapMagic)
	binary.LittleEndian.PutUint16(hdr[4:], pcapVerMajor)
	binary.LittleEndian.PutUint16(hdr[6:], pcapVerMinor)
	// thiszone, sigfigs = 0
	binary.LittleEndian.PutUint32(hdr[16:], pcapSnaplen)
	binary.LittleEndian.PutUint32(hdr[20:], pcapEthernet)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("obs: pcap header: %w", err)
	}
	return &PcapWriter{w: w}, nil
}

// WritePacket appends one captured frame with the given timestamp. The
// frame bytes are written synchronously, so callers may pass transient
// buffers (arena frames) without copying.
func (p *PcapWriter) WritePacket(tsNS int64, data []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return p.err
	}
	n := len(data)
	if n > pcapSnaplen {
		n = pcapSnaplen
	}
	var rec [16]byte
	binary.LittleEndian.PutUint32(rec[0:], uint32(tsNS/1e9))
	binary.LittleEndian.PutUint32(rec[4:], uint32(tsNS%1e9/1e3))
	binary.LittleEndian.PutUint32(rec[8:], uint32(n))
	binary.LittleEndian.PutUint32(rec[12:], uint32(len(data)))
	if _, err := p.w.Write(rec[:]); err != nil {
		p.err = err
		return err
	}
	if _, err := p.w.Write(data[:n]); err != nil {
		p.err = err
		return err
	}
	p.n++
	return nil
}

// Count returns the packets written so far.
func (p *PcapWriter) Count() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.n
}

// Err reports the writer's sticky error.
func (p *PcapWriter) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}
