package obs

import "sync"

// EventType enumerates the flight recorder's event taxonomy. Each type
// belongs to one layer of the stack; the A/B/C argument meanings are
// per-type (documented on the constants) — fixed-size records keep the
// recorder allocation-free.
type EventType uint8

const (
	// EvNetemEnqueue: a frame entered a link's impairment pipeline.
	// A=frame bytes, B=scheduled delivery instant (ns), C=held frames
	// after the enqueue. Src = link src base + direction.
	EvNetemEnqueue EventType = iota
	// EvNetemDrop: the link destroyed a frame. A=frame bytes,
	// B=drop kind (DropIID/DropBurst/DropQueue).
	EvNetemDrop
	// EvNicTxBurst: a port drained TX descriptors onto the wire.
	// A=frames, B=bytes, C=queue. Src = port id.
	EvNicTxBurst
	// EvNicRxBurst: a port DMAed arrived frames into an RX ring.
	// A=frames, B=bytes, C=queue. Src = port id.
	EvNicRxBurst
	// EvDevRxBurst: the poll-mode driver harvested frames. A=frames,
	// C=queue. Src = device id.
	EvDevRxBurst
	// EvDevTxBurst: the poll-mode driver queued frames for transmit.
	// A=frames, C=queue. Src = device id.
	EvDevTxBurst
	// EvTCPState: a TCP connection changed state. A=old state, B=new
	// state (fstack's tcpState numbering), C=local port. Src = stack id.
	EvTCPState
	// EvTCPRetransmit: a segment was retransmitted. A=kind
	// (RetxRTO/RetxFast/RetxSACK), B=sequence number, C=local port.
	EvTCPRetransmit
	// EvTCPCwnd: a connection's congestion window changed. A=cwnd
	// bytes, C=local port. Exported as a Chrome counter series.
	EvTCPCwnd
	// EvTCPAccept: a half-open connection graduated from the SYN cache
	// into the accept queue. A=accept-queue depth after the enqueue,
	// B=SYN-cache entries remaining, C=local (listen) port.
	EvTCPAccept
	// EvTCPSynDrop: a SYN was refused. A=reason (SynDropBacklog /
	// SynDropCache / SynDropOverflow), B=accept-queue depth,
	// C=local (listen) port.
	EvTCPSynDrop
	// EvGateCrossing: a sealed cross-compartment gate call completed.
	// A=total completed crossings.
	EvGateCrossing
	// EvUDPDrop: a datagram was dropped because the bound socket's
	// queue was full. A=payload bytes, B=queue depth, C=dst port.
	// Src = stack id.
	EvUDPDrop
	// EvAppRequest: an application request/response exchange completed
	// (or, for ReqTimeout, was given up on). A=latency ns from first
	// send to last response byte, B=response bytes, C=kind
	// (ReqHTTP/ReqDNS/ReqTimeout). Src = app worker id.
	EvAppRequest
	// EvFault: an injected or organic fault hit a compartment or
	// device. A=fault kind (FaultCap/FaultNICStall/FaultDMA),
	// B=retries so far for this target. Src = env/device id.
	EvFault
	// EvRestart: the supervisor restarted a trapped compartment.
	// A=retry count consumed, B=downtime ns (trap → restart).
	// Src = env id.
	EvRestart
	// EvLinkCarrier: a link direction's carrier toggled. A=1 for up,
	// 0 for down. Src = link src base + direction.
	EvLinkCarrier

	evTypeCount
)

// EvFault kinds (event argument A).
const (
	FaultCap      = 0 // injected capability fault trapped a cVM
	FaultNICStall = 1 // NIC queue stall window began
	FaultDMA      = 2 // DMA fault burst armed
)

// EvAppRequest kinds (event argument C).
const (
	ReqHTTP    = 0 // HTTP/1.1 keep-alive exchange completed
	ReqDNS     = 1 // DNS query answered
	ReqTimeout = 2 // DNS query abandoned after retries
)

// EvTCPSynDrop reasons (event argument A).
const (
	SynDropBacklog  = 0 // listen backlog full at SYN arrival
	SynDropCache    = 1 // SYN cache at capacity
	SynDropOverflow = 2 // accept queue full at graduation (final ACK)
)

// EvNetemDrop kinds (event argument B).
const (
	DropIID   = 0 // i.i.d. random loss
	DropBurst = 1 // Gilbert–Elliott burst loss
	DropQueue = 2 // bottleneck queue overflow (tail or RED)
	// DropCarrier: the frame entered the pipeline while the direction's
	// carrier was down (flap schedule), distinct from loss-model drops.
	DropCarrier = 3
)

// EvTCPRetransmit kinds (event argument A).
const (
	RetxRTO  = 0 // retransmission-timeout recovery
	RetxFast = 1 // fast retransmit (3 dup ACKs)
	RetxSACK = 2 // SACK-directed hole fill
)

var evNames = [evTypeCount]string{
	EvNetemEnqueue:  "netem.enqueue",
	EvNetemDrop:     "netem.drop",
	EvNicTxBurst:    "nic.tx_burst",
	EvNicRxBurst:    "nic.rx_burst",
	EvDevRxBurst:    "dpdk.rx_burst",
	EvDevTxBurst:    "dpdk.tx_burst",
	EvTCPState:      "tcp.state",
	EvTCPRetransmit: "tcp.retransmit",
	EvTCPCwnd:       "tcp.cwnd",
	EvTCPAccept:     "tcp.accept",
	EvTCPSynDrop:    "tcp.syn_drop",
	EvGateCrossing:  "gate.crossing",
	EvUDPDrop:       "udp.drop",
	EvAppRequest:    "app.request",
	EvFault:         "faultplane.fault",
	EvRestart:       "faultplane.restart",
	EvLinkCarrier:   "netem.carrier",
}

var evLayers = [evTypeCount]string{
	EvNetemEnqueue:  "netem",
	EvNetemDrop:     "netem",
	EvNicTxBurst:    "nic",
	EvNicRxBurst:    "nic",
	EvDevRxBurst:    "dpdk",
	EvDevTxBurst:    "dpdk",
	EvTCPState:      "fstack",
	EvTCPRetransmit: "fstack",
	EvTCPCwnd:       "fstack",
	EvTCPAccept:     "fstack",
	EvTCPSynDrop:    "fstack",
	EvGateCrossing:  "intravisor",
	EvUDPDrop:       "fstack",
	EvAppRequest:    "app",
	EvFault:         "faultplane",
	EvRestart:       "faultplane",
	EvLinkCarrier:   "netem",
}

// String names the event type ("layer.event").
func (t EventType) String() string {
	if int(t) < len(evNames) {
		return evNames[t]
	}
	return "unknown"
}

// Layer names the stack layer the event type belongs to.
func (t EventType) Layer() string {
	if int(t) < len(evLayers) {
		return evLayers[t]
	}
	return "unknown"
}

// Event is one fixed-size flight-recorder record. TS is virtual
// nanoseconds; A, B, C carry per-type arguments; Src identifies the
// emitting component within its layer (port index, stack/shard id,
// link direction — assigned by the testbed wiring).
type Event struct {
	TS      int64
	A, B, C int64
	Type    EventType
	Src     uint16
}

// Trace is the flight recorder: a fixed-capacity ring of events that
// keeps the most recent Capacity() records. Recording never allocates;
// when the ring is full the oldest event is overwritten, which is
// exactly what a flight recorder should do. Safe for concurrent use.
type Trace struct {
	mu    sync.Mutex
	ring  []Event
	next  int
	total uint64
}

// minTraceCapacity keeps degenerate capacities usable.
const minTraceCapacity = 64

// NewTrace builds a recorder holding up to capacity events.
func NewTrace(capacity int) *Trace {
	if capacity < minTraceCapacity {
		capacity = minTraceCapacity
	}
	return &Trace{ring: make([]Event, capacity)}
}

// Record appends one event, overwriting the oldest when full. Nil-safe
// so hook sites can record through an unguarded pointer if they want —
// though the idiomatic guard `if tr != nil` skips the call entirely.
func (t *Trace) Record(ts int64, typ EventType, src uint16, a, b, c int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ring[t.next] = Event{TS: ts, A: a, B: b, C: c, Type: typ, Src: src}
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
	}
	t.total++
	t.mu.Unlock()
}

// Capacity returns the ring size.
func (t *Trace) Capacity() int { return len(t.ring) }

// Total returns how many events were ever recorded (including ones the
// ring has since overwritten).
func (t *Trace) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Len returns how many events the ring currently holds.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lenLocked()
}

func (t *Trace) lenLocked() int {
	if t.total >= uint64(len(t.ring)) {
		return len(t.ring)
	}
	return int(t.total)
}

// Snapshot copies the held events in chronological order.
func (t *Trace) Snapshot() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.lenLocked()
	out := make([]Event, 0, n)
	if t.total >= uint64(len(t.ring)) {
		out = append(out, t.ring[t.next:]...)
	}
	out = append(out, t.ring[:t.next]...)
	return out
}
