package sim

import "sync/atomic"

// VClock is a manually advanced virtual clock. It satisfies
// hostos.Clock. It is safe for concurrent readers with a single
// advancing driver.
type VClock struct {
	now atomic.Int64
}

// NewVClock starts a virtual clock at zero.
func NewVClock() *VClock { return &VClock{} }

// Now returns the current virtual time in nanoseconds.
func (c *VClock) Now() int64 { return c.now.Load() }

// Advance moves the clock forward by d nanoseconds.
func (c *VClock) Advance(d int64) {
	if d < 0 {
		panic("sim: clock cannot go backwards")
	}
	c.now.Add(d)
}

// Set jumps the clock to t (must not move backwards).
func (c *VClock) Set(t int64) {
	for {
		cur := c.now.Load()
		if t < cur {
			panic("sim: clock cannot go backwards")
		}
		if c.now.CompareAndSwap(cur, t) {
			return
		}
	}
}
