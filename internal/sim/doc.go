// Package sim provides the timing machinery for the simulated hardware:
// a virtual clock for deterministic, host-speed-independent experiments,
// and byte-time serializers (token buckets) that impose link and bus
// rates on the simulated NIC.
//
// Bandwidth experiments (paper Table II) run the whole machine pair in
// virtual time: a single driver thread steps the poll-mode loops and
// advances the clock in fixed quanta, so the achieved throughput depends
// only on the modelled rates (1 Gbit/s links, shared PCI bus), never on
// host CPU speed. Latency experiments (Figs. 4-6) use the real clock —
// they measure the genuine cost of the capability machinery.
package sim
