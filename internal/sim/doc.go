// Package sim provides the timing machinery for the simulated hardware:
// a virtual clock for deterministic, host-speed-independent experiments,
// and byte-time serializers (token buckets) that impose link and bus
// rates on the simulated NIC.
//
// Bandwidth experiments (paper Table II) run the whole machine pair in
// virtual time: a single driver thread steps the poll-mode loops on a
// fixed 5 µs grid, so the achieved throughput depends only on the
// modelled rates (1 Gbit/s links, shared PCI bus), never on host CPU
// speed. The driver is event-driven: when every component reports its
// next deadline (Serializer.NextAdmitAt here; FIFO heads, delay lines
// and TCP timers elsewhere) beyond the next grid point, the clock
// leaps straight to the grid point containing that deadline — skipped
// iterations are provably no-ops, so behavior is bit-identical to
// stepping every tick (DESIGN.md §8). Latency experiments (Figs. 4-6)
// use the real clock — they measure the genuine cost of the
// capability machinery.
package sim
