package sim

import (
	"sync"

	"repro/internal/hostos"
)

// Serializer models a transmission resource with a fixed bit rate (an
// Ethernet line, a PCI bus). Admitting n cost-bytes books n*8/rate of
// resource time; when the resource is booked further than maxAhead past
// the current clock, admission fails and the caller must retry later
// (ring backpressure, exactly how a full NIC queue behaves).
//
// The "how far ahead" window stands in for the device FIFO: a couple of
// frame times is realistic and keeps the model work-conserving.
type Serializer struct {
	clk hostos.Clock

	mu       sync.Mutex
	bitsPerS float64
	maxAhead int64 // ns
	nextFree int64 // ns timestamp at which the resource is free
}

// NewSerializer creates a serializer at rate bits/s with the given
// booking window.
func NewSerializer(clk hostos.Clock, bitsPerS float64, maxAheadNS int64) *Serializer {
	if bitsPerS <= 0 {
		panic("sim: serializer rate must be positive")
	}
	return &Serializer{clk: clk, bitsPerS: bitsPerS, maxAhead: maxAheadNS}
}

// Admit books costBytes of resource time. It returns the absolute time
// at which the transfer completes and true, or 0 and false when the
// resource is over-booked (caller retries on a later poll).
func (s *Serializer) Admit(costBytes int) (doneAt int64, ok bool) {
	now := s.clk.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.nextFree < now {
		s.nextFree = now
	}
	if s.nextFree-now > s.maxAhead {
		return 0, false
	}
	s.nextFree += int64(float64(costBytes*8) / s.bitsPerS * 1e9)
	return s.nextFree, true
}

// Book charges costBytes of resource time unconditionally, returning
// the completion instant. Unlike Admit it never refuses: callers use it
// to account for work that has already happened (e.g. a CPU model
// charging for a burst it just processed), accepting transient
// overshoot past the window; CanAdmit then stays false until the clock
// catches up, so the long-run rate is still honored exactly.
func (s *Serializer) Book(costBytes int) (doneAt int64) {
	now := s.clk.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.nextFree < now {
		s.nextFree = now
	}
	s.nextFree += int64(float64(costBytes*8) / s.bitsPerS * 1e9)
	return s.nextFree
}

// CanAdmit reports whether an admission would currently succeed, without
// booking anything. Callers that must atomically admit on two resources
// (line and bus) use it to avoid booking one when the other would refuse.
func (s *Serializer) CanAdmit() bool {
	now := s.clk.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	next := s.nextFree
	if next < now {
		next = now
	}
	return next-now <= s.maxAhead
}

// NextAdmitAt reports the earliest instant at which CanAdmit will be
// true: now when the window has room already, otherwise the moment the
// existing bookings drain back inside it. Bookings only move on Admit/
// Book calls — which are work, happening on visited instants — so the
// value stays exact across a quiescent stretch, which is what lets the
// event-driven driver leap straight to it.
func (s *Serializer) NextAdmitAt(now int64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	at := s.nextFree - s.maxAhead
	if at < now {
		return now
	}
	return at
}

// Busy reports whether the resource is currently booked past now.
func (s *Serializer) Busy() bool {
	now := s.clk.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextFree > now
}

// Rate returns the configured rate in bits per second.
func (s *Serializer) Rate() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bitsPerS
}

// SetRate changes the rate for future admissions (already-booked
// transfers keep their completion times). The bus arbiter uses it to
// redistribute bandwidth as ports become active and idle.
func (s *Serializer) SetRate(bitsPerS float64) {
	if bitsPerS <= 0 {
		panic("sim: serializer rate must be positive")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bitsPerS = bitsPerS
}
