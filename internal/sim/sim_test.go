package sim

import "testing"

func TestVClockAdvances(t *testing.T) {
	c := NewVClock()
	if c.Now() != 0 {
		t.Fatalf("fresh clock at %d", c.Now())
	}
	c.Advance(1000)
	if c.Now() != 1000 {
		t.Fatalf("after advance: %d", c.Now())
	}
	c.Set(5000)
	if c.Now() != 5000 {
		t.Fatalf("after set: %d", c.Now())
	}
}

func TestVClockRejectsBackwards(t *testing.T) {
	c := NewVClock()
	c.Advance(100)
	defer func() {
		if recover() == nil {
			t.Fatal("Set backwards must panic")
		}
	}()
	c.Set(50)
}

func TestSerializerPacesToRate(t *testing.T) {
	clk := NewVClock()
	// 1 Gbit/s, window of 2 frame times.
	s := NewSerializer(clk, 1e9, 2*12304) // 1538B = 12304ns at 1Gbps
	const frame = 1538
	admitted := 0
	// Drive for 10 ms of virtual time in 5 µs polls.
	for clk.Now() < 10e6 {
		for {
			if _, ok := s.Admit(frame); !ok {
				break
			}
			admitted++
		}
		clk.Advance(5000)
	}
	// Ideal frame count in 10 ms at 1 Gbit/s: 10e6 ns / 12304 ns = 812.7.
	want := int(10_000_000 / 12304)
	if admitted < want-3 || admitted > want+3 {
		t.Fatalf("admitted %d frames in 10ms, want ≈%d", admitted, want)
	}
}

func TestSerializerBackpressure(t *testing.T) {
	clk := NewVClock()
	s := NewSerializer(clk, 1e9, 1000) // tiny 1 µs window
	if _, ok := s.Admit(1538); !ok {
		t.Fatal("first frame must be admitted")
	}
	// The first frame books 12.3 µs; the window is 1 µs, so the next
	// admission must fail until time passes.
	if _, ok := s.Admit(1538); ok {
		t.Fatal("second frame must be refused while the link is booked")
	}
	if !s.Busy() {
		t.Fatal("link should be busy")
	}
	clk.Advance(12304)
	if _, ok := s.Admit(1538); !ok {
		t.Fatal("frame must be admitted after the link drains")
	}
}

func TestSerializerDoneAtMonotone(t *testing.T) {
	clk := NewVClock()
	s := NewSerializer(clk, 1e9, 1<<40)
	var last int64
	for i := 0; i < 100; i++ {
		at, ok := s.Admit(100)
		if !ok {
			t.Fatal("admission with huge window failed")
		}
		if at <= last {
			t.Fatalf("completion times not strictly increasing: %d then %d", last, at)
		}
		last = at
	}
}

func TestSerializerSharedContention(t *testing.T) {
	// Two producers sharing one bus get half the rate each, provided the
	// driver rotates the polling order (round-robin arbitration, as the
	// NIC machine stepper does).
	clk := NewVClock()
	bus := NewSerializer(clk, 1e9, 25000)
	counts := [2]int{}
	tick := 0
	for clk.Now() < 100e6 {
		first := tick % 2
		for j := 0; j < 2; j++ {
			i := (first + j) % 2
			if _, ok := bus.Admit(1538); ok {
				counts[i]++
			}
		}
		clk.Advance(5000)
		tick++
	}
	total := counts[0] + counts[1]
	want := int(100_000_000 / 12304)
	if total < want-3 || total > want+3 {
		t.Fatalf("total %d, want ≈%d", total, want)
	}
	// Split within 10 % of even.
	if diff := counts[0] - counts[1]; diff < -total/10 || diff > total/10 {
		t.Fatalf("unfair split: %v", counts)
	}
}

func TestSerializerRate(t *testing.T) {
	s := NewSerializer(NewVClock(), 42e6, 1000)
	if s.Rate() != 42e6 {
		t.Fatalf("rate = %v", s.Rate())
	}
}
