// Package stats holds the testbed's measurement containers — currently
// the log-bucketed latency Histogram: bounded relative error, fixed
// memory, mergeable across shards, with p50/p99/p999 summaries. It is
// a leaf package (stdlib only) so every layer can record into it.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// Histogram bucket geometry: values below 2*histSubCount map to their
// own bucket (exact); larger values split each power-of-two range into
// histSubCount linear sub-buckets, so the relative quantization error
// is bounded by 2^-histSubBits (~3%) regardless of magnitude. The
// layout is HdrHistogram's, sized for non-negative int64 nanoseconds.
const (
	histSubBits  = 5
	histSubCount = 1 << histSubBits
	// histBuckets covers every value up to 2^63-1: the top power-of-two
	// range has exponent 62-histSubBits, plus the two direct ranges.
	histBuckets = (62-histSubBits)*histSubCount + 2*histSubCount
)

// histBucket maps a non-negative value to its bucket index.
func histBucket(v int64) int {
	u := uint64(v)
	if u < 2*histSubCount {
		return int(u)
	}
	exp := bits.Len64(u) - histSubBits - 1
	return exp<<histSubBits + int(u>>uint(exp))
}

// histLower returns the smallest value a bucket holds (the inverse of
// histBucket at the bucket's left edge).
func histLower(i int) int64 {
	if i < 2*histSubCount {
		return int64(i)
	}
	exp := i>>histSubBits - 1
	mant := i&(histSubCount-1) | histSubCount
	return int64(mant) << uint(exp)
}

// histUpper returns the largest value a bucket holds.
func histUpper(i int) int64 {
	if i+1 >= histBuckets {
		return math.MaxInt64
	}
	return histLower(i+1) - 1
}

// Histogram is a log-bucketed latency histogram: constant-space,
// allocation-free recording, bounded relative error (~3%), and
// mergeable across shards. The zero value is ready to use. It is
// ns-oriented like the rest of this package but unit-free. Recording
// is safe for concurrent use.
type Histogram struct {
	mu     sync.Mutex
	counts [histBuckets]uint64
	n      uint64
	sum    int64
	min    int64 // valid when n > 0
	max    int64
}

// Record adds one sample. Negative samples clamp to zero (a latency
// histogram has no use for them, and clock skew cannot happen under
// virtual time anyway).
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.mu.Lock()
	h.counts[histBucket(v)]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	h.mu.Unlock()
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Mean returns the exact average of the recorded samples (the sum is
// tracked outside the buckets, so it carries no quantization error).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Min returns the smallest recorded sample (0 when empty).
func (h *Histogram) Min() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample (0 when empty).
func (h *Histogram) Max() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Quantile returns the q-th quantile (0..1) as the midpoint of the
// bucket holding the sample of that rank, clamped to the observed
// [min, max]. The estimate's relative error is bounded by the bucket
// geometry (~3%).
func (h *Histogram) Quantile(q float64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var cum uint64
	for i := range h.counts {
		c := h.counts[i]
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			mid := histLower(i) + (histUpper(i)-histLower(i))/2
			if mid < h.min {
				mid = h.min
			}
			if mid > h.max {
				mid = h.max
			}
			return mid
		}
	}
	return h.max
}

// Merge folds other into h (other is left unchanged). Merging is
// commutative and associative, so per-shard histograms can be combined
// in any order without changing any quantile.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || h == other {
		return
	}
	other.mu.Lock()
	counts := other.counts
	n, sum, mn, mx := other.n, other.sum, other.min, other.max
	other.mu.Unlock()
	if n == 0 {
		return
	}
	h.mu.Lock()
	for i, c := range counts {
		if c != 0 {
			h.counts[i] += c
		}
	}
	if h.n == 0 || mn < h.min {
		h.min = mn
	}
	if h.n == 0 || mx > h.max {
		h.max = mx
	}
	h.n += n
	h.sum += sum
	h.mu.Unlock()
}

// fmtNS renders a nanosecond quantity with a human unit.
func fmtNS(ns int64) string {
	switch {
	case ns < 1_000:
		return fmt.Sprintf("%dns", ns)
	case ns < 1_000_000:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	case ns < 1_000_000_000:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%.3fs", float64(ns)/1e9)
	}
}

// String renders the histogram's tail summary in one line (ns-valued
// samples assumed).
func (h *Histogram) String() string {
	if h.Count() == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d p50=%s p99=%s p999=%s max=%s",
		h.Count(), fmtNS(h.Quantile(0.50)), fmtNS(h.Quantile(0.99)),
		fmtNS(h.Quantile(0.999)), fmtNS(h.Max()))
}
