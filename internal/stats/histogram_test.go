package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestHistBucketBoundaries walks the bucket geometry: indices are
// monotone in the value, contiguous (no value falls between buckets),
// exact below 2*histSubCount, and bounded in relative width above it.
func TestHistBucketBoundaries(t *testing.T) {
	// Every bucket's [lower, upper] range must map back to that bucket,
	// and bucket i+1 must start exactly one past bucket i's end.
	for i := 0; i < histBuckets; i++ {
		lo, hi := histLower(i), histUpper(i)
		if histBucket(lo) != i {
			t.Fatalf("bucket %d: lower %d maps to %d", i, lo, histBucket(lo))
		}
		if hi != math.MaxInt64 && histBucket(hi) != i {
			t.Fatalf("bucket %d: upper %d maps to %d", i, hi, histBucket(hi))
		}
		if i+1 < histBuckets && histLower(i+1) != hi+1 {
			t.Fatalf("gap after bucket %d: upper %d, next lower %d", i, hi, histLower(i+1))
		}
	}
	// Exact region: one value per bucket.
	for v := int64(0); v < 2*histSubCount; v++ {
		if histBucket(v) != int(v) {
			t.Fatalf("small value %d in bucket %d", v, histBucket(v))
		}
	}
	// Log region: bucket width stays within 2^-histSubBits of the value.
	for _, v := range []int64{64, 100, 1000, 12345, 1 << 20, 5e9, math.MaxInt64 - 1} {
		i := histBucket(v)
		lo, hi := histLower(i), histUpper(i)
		if v < lo || v > hi {
			t.Fatalf("value %d outside its bucket [%d,%d]", v, lo, hi)
		}
		if hi == math.MaxInt64 {
			continue
		}
		if width := hi - lo + 1; float64(width) > float64(lo)/float64(histSubCount)+1 {
			t.Fatalf("bucket %d too wide: [%d,%d] width %d", i, lo, hi, width)
		}
	}
	// Monotone across the exact/log seam.
	prev := -1
	for v := int64(0); v < 8*histSubCount; v++ {
		if b := histBucket(v); b < prev {
			t.Fatalf("bucket index decreased at value %d", v)
		} else {
			prev = b
		}
	}
}

// quantileExact is the reference: the ceil-rank order statistic.
func quantileExact(sorted []int64, q float64) int64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// TestHistogramQuantileAccuracy feeds known distributions and checks
// the histogram's p50/p99/p999 against the exact order statistics,
// within the bucket geometry's relative-error bound.
func TestHistogramQuantileAccuracy(t *testing.T) {
	distributions := map[string]func(i int, rng *rand.Rand) int64{
		"uniform":     func(i int, rng *rand.Rand) int64 { return rng.Int63n(1_000_000) },
		"exponential": func(i int, rng *rand.Rand) int64 { return int64(rng.ExpFloat64() * 50_000) },
		"bimodal": func(i int, rng *rand.Rand) int64 {
			if i%10 == 0 {
				return 2_000_000 + rng.Int63n(100_000)
			}
			return 10_000 + rng.Int63n(1_000)
		},
		"ramp": func(i int, rng *rand.Rand) int64 { return int64(i) },
	}
	for name, gen := range distributions {
		rng := rand.New(rand.NewSource(42))
		h := &Histogram{}
		const n = 20_000
		samples := make([]int64, 0, n)
		for i := 0; i < n; i++ {
			v := gen(i, rng)
			samples = append(samples, v)
			h.Record(v)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		if h.Count() != n {
			t.Fatalf("%s: count %d, want %d", name, h.Count(), n)
		}
		for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
			got := h.Quantile(q)
			want := quantileExact(samples, q)
			// The estimate sits inside the bucket holding the exact
			// order statistic, so it can be off by at most one bucket
			// width: 2^-histSubBits relative, +1 for integer rounding.
			tol := float64(want)/float64(histSubCount) + 1
			if math.Abs(float64(got-want)) > tol {
				t.Errorf("%s p%g: got %d, exact %d (tol %.0f)", name, q*100, got, want, tol)
			}
		}
		if h.Min() != samples[0] || h.Max() != samples[n-1] {
			t.Errorf("%s: min/max %d/%d, want %d/%d", name, h.Min(), h.Max(), samples[0], samples[n-1])
		}
		wantMean := 0.0
		for _, v := range samples {
			wantMean += float64(v)
		}
		wantMean /= n
		if math.Abs(h.Mean()-wantMean) > 1e-6 {
			t.Errorf("%s: mean %.3f, want %.3f", name, h.Mean(), wantMean)
		}
	}
}

// TestHistogramMergeAssociativity splits one sample stream over three
// "shards" and checks that every merge order yields a histogram
// indistinguishable from recording the whole stream into one — the
// property that makes per-shard histograms safe to aggregate.
func TestHistogramMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shards := []*Histogram{{}, {}, {}}
	whole := &Histogram{}
	for i := 0; i < 30_000; i++ {
		v := rng.Int63n(10_000_000)
		shards[i%3].Record(v)
		whole.Record(v)
	}

	// (a ⊕ b) ⊕ c
	left := &Histogram{}
	left.Merge(shards[0])
	left.Merge(shards[1])
	left.Merge(shards[2])
	// a ⊕ (b ⊕ c)
	bc := &Histogram{}
	bc.Merge(shards[1])
	bc.Merge(shards[2])
	right := &Histogram{}
	right.Merge(shards[0])
	right.Merge(bc)

	for _, m := range []*Histogram{left, right} {
		if m.Count() != whole.Count() {
			t.Fatalf("merged count %d, want %d", m.Count(), whole.Count())
		}
		if m.counts != whole.counts {
			t.Fatalf("merged bucket counts differ from whole-stream recording")
		}
		if m.Min() != whole.Min() || m.Max() != whole.Max() || m.Mean() != whole.Mean() {
			t.Fatalf("merged min/max/mean differ from whole-stream recording")
		}
		for _, q := range []float64{0.5, 0.99, 0.999} {
			if m.Quantile(q) != whole.Quantile(q) {
				t.Fatalf("p%g: merged %d, whole %d", q*100, m.Quantile(q), whole.Quantile(q))
			}
		}
	}
	if left.counts != right.counts {
		t.Fatalf("merge is not associative")
	}

	// Merging an empty or nil histogram is a no-op.
	before := left.Count()
	left.Merge(&Histogram{})
	left.Merge(nil)
	if left.Count() != before {
		t.Fatalf("empty/nil merge changed the count")
	}
}

// TestHistogramEmptyAndClamp pins the zero-value and negative-sample
// behavior the datapath hooks rely on.
func TestHistogramEmptyAndClamp(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatalf("empty histogram must read as zeros")
	}
	if h.String() != "n=0" {
		t.Fatalf("empty String() = %q", h.String())
	}
	h.Record(-5)
	if h.Count() != 1 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("negative sample must clamp to 0: %v", h)
	}
}
