// Package stats provides the summary statistics the paper's evaluation
// uses: IQR outlier removal ("outliers (≈10% of the iterations) are
// removed with a standard IQR strategy", §IV) and box-plot summaries
// (averages, standard deviations, quartiles) for Figs. 4-6.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Box is a box-plot summary of a sample set.
type Box struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
}

// quantile returns the q-th quantile (0..1) of sorted data by linear
// interpolation.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summarize computes the box statistics of data (not modified).
func Summarize(data []float64) Box {
	if len(data) == 0 {
		return Box{}
	}
	s := append([]float64(nil), data...)
	sort.Float64s(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	mean := sum / float64(len(s))
	var varsum float64
	for _, v := range s {
		d := v - mean
		varsum += d * d
	}
	std := 0.0
	if len(s) > 1 {
		std = math.Sqrt(varsum / float64(len(s)-1))
	}
	return Box{
		N:      len(s),
		Mean:   mean,
		Std:    std,
		Min:    s[0],
		Q1:     quantile(s, 0.25),
		Median: quantile(s, 0.5),
		Q3:     quantile(s, 0.75),
		Max:    s[len(s)-1],
	}
}

// RemoveOutliersIQR drops values outside [Q1-k*IQR, Q3+k*IQR] (k=1.5 is
// the standard strategy the paper cites) and returns the kept values.
func RemoveOutliersIQR(data []float64, k float64) []float64 {
	if len(data) == 0 {
		return nil
	}
	s := append([]float64(nil), data...)
	sort.Float64s(s)
	q1 := quantile(s, 0.25)
	q3 := quantile(s, 0.75)
	iqr := q3 - q1
	lo, hi := q1-k*iqr, q3+k*iqr
	out := make([]float64, 0, len(data))
	for _, v := range data {
		if v >= lo && v <= hi {
			out = append(out, v)
		}
	}
	return out
}

// FromInt64 converts integer samples (ns) to float64.
func FromInt64(xs []int64) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = float64(v)
	}
	return out
}

// CleanBox applies the paper's pipeline to raw ns samples: IQR(1.5)
// outlier removal, then the box summary.
func CleanBox(samples []int64) Box {
	return Summarize(RemoveOutliersIQR(FromInt64(samples), 1.5))
}

// String renders the box in one line (ns-oriented but unit-free).
func (b Box) String() string {
	return fmt.Sprintf("n=%d mean=%.0f std=%.0f min=%.0f q1=%.0f med=%.0f q3=%.0f max=%.0f",
		b.N, b.Mean, b.Std, b.Min, b.Q1, b.Median, b.Q3, b.Max)
}
