package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarizeKnownValues(t *testing.T) {
	b := Summarize([]float64{1, 2, 3, 4, 5})
	if b.N != 5 || b.Mean != 3 || b.Median != 3 || b.Min != 1 || b.Max != 5 {
		t.Fatalf("box: %+v", b)
	}
	if b.Q1 != 2 || b.Q3 != 4 {
		t.Fatalf("quartiles: %+v", b)
	}
	if math.Abs(b.Std-math.Sqrt(2.5)) > 1e-9 {
		t.Fatalf("std = %v", b.Std)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if b := Summarize(nil); b.N != 0 {
		t.Fatal("empty box")
	}
	b := Summarize([]float64{7})
	if b.N != 1 || b.Mean != 7 || b.Median != 7 || b.Std != 0 {
		t.Fatalf("singleton box: %+v", b)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	data := []float64{3, 1, 2}
	Summarize(data)
	if data[0] != 3 || data[1] != 1 || data[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestRemoveOutliersIQR(t *testing.T) {
	data := []float64{10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 1000}
	kept := RemoveOutliersIQR(data, 1.5)
	for _, v := range kept {
		if v == 1000 {
			t.Fatal("outlier survived")
		}
	}
	if len(kept) != len(data)-1 {
		t.Fatalf("kept %d of %d", len(kept), len(data))
	}
}

func TestRemoveOutliersKeepsCleanData(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	if kept := RemoveOutliersIQR(data, 1.5); len(kept) != len(data) {
		t.Fatalf("clean data lost values: %d", len(kept))
	}
	if RemoveOutliersIQR(nil, 1.5) != nil {
		t.Fatal("empty input")
	}
}

func TestCleanBoxPipeline(t *testing.T) {
	// 1000 samples around 500 ns plus 10% huge outliers — the paper's
	// situation ("outliers (≈10% of the iterations) are removed").
	r := rand.New(rand.NewSource(42))
	var samples []int64
	for i := 0; i < 900; i++ {
		samples = append(samples, 500+int64(r.Intn(21))-10)
	}
	for i := 0; i < 100; i++ {
		samples = append(samples, 20000+int64(r.Intn(1000)))
	}
	b := CleanBox(samples)
	if b.Mean < 480 || b.Mean > 520 {
		t.Fatalf("outliers polluted the mean: %+v", b)
	}
	if b.N > 920 {
		t.Fatalf("outliers kept: n=%d", b.N)
	}
}

// Property: quartiles are ordered and bounded by min/max.
func TestQuickBoxInvariants(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		data := make([]float64, len(raw))
		for i, v := range raw {
			data[i] = float64(v)
		}
		b := Summarize(data)
		return b.Min <= b.Q1 && b.Q1 <= b.Median &&
			b.Median <= b.Q3 && b.Q3 <= b.Max &&
			b.Mean >= b.Min && b.Mean <= b.Max && b.N == len(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: RemoveOutliersIQR is idempotent-ish — output is a subset
// preserving order.
func TestQuickIQRSubset(t *testing.T) {
	f := func(raw []int16) bool {
		data := make([]float64, len(raw))
		for i, v := range raw {
			data[i] = float64(v)
		}
		kept := RemoveOutliersIQR(data, 1.5)
		if len(kept) > len(data) {
			return false
		}
		// kept must appear in data in order
		j := 0
		for _, v := range data {
			if j < len(kept) && kept[j] == v {
				j++
			}
		}
		return j == len(kept)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBoxString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3}).String()
	if s == "" {
		t.Fatal("empty string")
	}
}
