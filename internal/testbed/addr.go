package testbed

import (
	"fmt"

	"repro/internal/fstack"
)

// The testbed addressing plan, centralized here so no scenario needs
// its own copy: NIC port i uses subnet 10.0.i.0/24 with .1 on the
// local box and .2 on the link partner; MACs are 02:82:57:60:00:XX
// with XX = 0x01 for the local card and 0x80+port for peers. Build
// validates every claimed address against the plan and fails loudly on
// collisions instead of silently overlapping.

// Mask24 is the /24 netmask used throughout the testbed.
var Mask24 = fstack.IP4(255, 255, 255, 0)

// LocalIP is the local box's address on port's subnet.
func LocalIP(port int) fstack.IPv4Addr { return fstack.IP4(10, 0, byte(port), 1) }

// PeerIP is the link partner's address on port's subnet.
func PeerIP(port int) fstack.IPv4Addr { return fstack.IP4(10, 0, byte(port), 2) }

// addrPlan tracks who claimed which address or port, so collisions
// surface as build errors naming both claimants.
type addrPlan struct {
	ips        map[fstack.IPv4Addr]string
	macs       map[byte]string
	localPorts map[int]string
	peerPorts  map[int]string
}

func newAddrPlan() *addrPlan {
	return &addrPlan{
		ips:        map[fstack.IPv4Addr]string{},
		macs:       map[byte]string{},
		localPorts: map[int]string{},
		peerPorts:  map[int]string{},
	}
}

func (p *addrPlan) claimIP(ip fstack.IPv4Addr, what string) error {
	if prev, ok := p.ips[ip]; ok {
		return fmt.Errorf("testbed: IP %v claimed by both %s and %s", ip, prev, what)
	}
	p.ips[ip] = what
	return nil
}

func (p *addrPlan) claimMAC(last byte, what string) error {
	if prev, ok := p.macs[last]; ok {
		return fmt.Errorf("testbed: MAC suffix %#02x claimed by both %s and %s", last, prev, what)
	}
	p.macs[last] = what
	return nil
}

func (p *addrPlan) claimLocalPort(port int, what string) error {
	if prev, ok := p.localPorts[port]; ok {
		return fmt.Errorf("testbed: local port %d claimed by both %s and %s", port, prev, what)
	}
	p.localPorts[port] = what
	return nil
}

func (p *addrPlan) claimPeerPort(port int, what string) error {
	if prev, ok := p.peerPorts[port]; ok {
		return fmt.Errorf("testbed: port %d already faces %s; %s cannot share the cable", port, prev, what)
	}
	p.peerPorts[port] = what
	return nil
}
