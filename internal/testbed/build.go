package testbed

import (
	"fmt"
	"math"

	"repro/internal/dpdk"
	"repro/internal/faultplane"
	"repro/internal/fstack"
	"repro/internal/hostos"
	"repro/internal/intravisor"
	"repro/internal/netem"
	"repro/internal/nic"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Bed is a wired topology: the local machine with its environments and
// gates, plus the remote link partners and their links. Experiments
// attach applications to the loops and drive virtual time.
type Bed struct {
	Clk   hostos.Clock
	Local *Machine
	// Envs are the local network environments, one per compartment in
	// spec order.
	Envs []*Env
	// Apps are application compartments without NIC ports (API-gate
	// policy) and their gated API views.
	Apps []*GatedAPI
	// Gates is non-nil when a compartment exported its stack API.
	Gates *StackGates
	// Peers are the remote machines, in spec order.
	Peers []*Peer
	// Links holds each peer's netem link, nil where a plain wire
	// connects (parallel to Peers).
	Links []*netem.Link
	// Sharded and Dev expose the (single) sharded compartment's stack
	// and multi-queue device, when the spec has one.
	Sharded *fstack.ShardedStack
	Dev     *dpdk.EthDev
	// Obs carries the wired observability instruments; nil when the
	// spec's ObsSpec is the zero value (everything off).
	Obs *obs.Obs
	// Pcaps are the open per-peer link captures (ObsSpec.PcapDir).
	Pcaps []*LinkCapture
	// Faults and Super are the wired fault plane and compartment
	// supervisor; both nil when the spec's FaultSpec is the zero value.
	// The driver steps them via FaultStep.
	Faults *faultplane.Plane
	Super  *faultplane.Supervisor
	// RestartHook, when set, runs after the supervisor brings a crashed
	// environment's cVM, gates and stack back up — the place an
	// experiment re-establishes listeners and epoll registrations, the
	// way the restarted compartment's main() would.
	RestartHook func(e *Env, now int64)

	// loops caches the Loops() result: the event-driven driver asks
	// for it (via NextDeadline) on every iteration, and the topology
	// never changes after Build.
	loops []*fstack.Loop

	// arena is this bed's private frame-buffer pool, shared by the
	// local machine, every peer and every link — frames never cross
	// beds, so concurrent sweep cells never contend on one global pool.
	arena *nic.FrameArena

	// gatesEnv is the environment Gates exports, so a restart knows
	// whose gates to re-seal.
	gatesEnv *Env
}

// Loops lists every main loop in the bed (local compartments first —
// shard loops in shard order for sharded ones — then peers). The
// slice is cached; callers must not mutate it.
func (b *Bed) Loops() []*fstack.Loop {
	if b.loops != nil {
		return b.loops
	}
	var out []*fstack.Loop
	for _, e := range b.Envs {
		out = append(out, e.Loops()...)
	}
	for _, p := range b.Peers {
		out = append(out, p.Env.Loop)
	}
	b.loops = out
	return out
}

// AppCVM returns the i-th application compartment (API-gate layouts).
func (b *Bed) AppCVM(i int) *intravisor.CVM { return b.Apps[i].App }

// NextDeadline aggregates the earliest future-work instant over every
// time-holding component of the bed: each loop's stack (connection
// timers, devices, ports, serializers, attached conduits) and each
// netem link's delay lines. A value <= now means some component has
// work due right now; math.MaxInt64 means the whole bed is quiescent
// until something outside it (an application's timed action) happens.
// Event-driven experiment drivers use this to leap the virtual clock
// over provably empty poll rounds.
func (b *Bed) NextDeadline(now int64) int64 {
	d := int64(math.MaxInt64)
	for _, l := range b.Loops() {
		if at := l.NextDeadline(now); at < d {
			d = at
		}
	}
	// The loops reach the links through their ports already; asking
	// the links directly keeps the answer correct even for a link
	// whose ports are all idle-disarmed.
	for _, ln := range b.Links {
		if ln == nil {
			continue
		}
		if at := ln.NextDeadline(now); at < d {
			d = at
		}
	}
	// The metrics sampler is a timed component too: folding its next
	// sample instant in keeps the timeseries on its grid even when the
	// bed itself would leap further. Nil-safe no-op when obs is off.
	if at := b.Obs.NextDeadline(now); at < d {
		d = at
	}
	// Same for the fault plane's next event and the supervisor's next
	// restart instant (both nil-safe MaxInt64 with no FaultSpec).
	if at := b.Faults.NextDeadline(now); at < d {
		d = at
	}
	if at := b.Super.NextDeadline(now); at < d {
		d = at
	}
	return d
}

// Peer is a remote link partner: its own machine with an ideal NIC and
// a Baseline environment, wired to one local port.
type Peer struct {
	M   *Machine
	Env *Env
	// Port is the local NIC port this peer faces.
	Port int
	// Link is the netem pipeline to the local port, nil for a wire.
	Link *netem.Link
}

// Build wires a spec into a running Bed. Construction order is
// deterministic — machine, then compartments in spec order (each env,
// then its gates and app cVMs), then peers, then stack tuning — so
// equal specs build bit-identical topologies.
func Build(spec Spec) (*Bed, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	macLast := spec.Machine.MACLast
	if macLast == 0 {
		macLast = defaultLocalMAC
	}
	arena := nic.NewFrameArena()
	local, err := newMachine(machineConfig{
		Name:        spec.Machine.Name,
		Clk:         spec.Clk,
		MemBytes:    spec.Machine.MemBytes,
		Ports:       spec.Machine.Ports,
		LineRateBps: spec.Machine.LineRateBps,
		RxFifoBytes: spec.Machine.RxFifoBytes,
		BusLimited:  spec.Machine.BusLimited,
		CapDMA:      spec.Machine.CapDMA,
		MACLast:     macLast,
		Arena:       arena,
	})
	if err != nil {
		return nil, err
	}
	bed := &Bed{Clk: spec.Clk, Local: local, arena: arena}
	for _, cs := range spec.Compartments {
		if err := bed.buildCompartment(cs); err != nil {
			return nil, err
		}
	}
	for _, ps := range spec.Peers {
		if err := bed.buildPeer(spec, ps); err != nil {
			return nil, err
		}
	}
	// Stack tuning last, before any traffic: compartments in spec
	// order, then peers.
	for i, cs := range spec.Compartments {
		applyStackSpec(bed.Envs[i], cs.Stack)
	}
	for i, ps := range spec.Peers {
		applyStackSpec(bed.Peers[i].Env, ps.Stack)
	}
	// Observability last, over the finished topology; a zero ObsSpec
	// never reaches wireObs, so the hook pointers stay nil everywhere.
	if spec.Obs.Enabled() {
		if err := bed.wireObs(spec); err != nil {
			return nil, err
		}
	}
	// Fault plane after obs (its events trace through the recorder); a
	// zero FaultSpec never reaches wireFaults, so Faults and Super stay
	// nil and FaultStep costs two nil checks.
	if spec.Faults.Enabled() {
		if err := bed.wireFaults(spec); err != nil {
			return nil, err
		}
	}
	return bed, nil
}

// buildCompartment wires one local environment per its spec.
func (b *Bed) buildCompartment(cs CompartmentSpec) error {
	segBytes := cs.SegBytes
	if segBytes == 0 {
		segBytes = DefaultSegBytes
	}
	poolBufs := cs.PoolBufs
	if poolBufs == 0 {
		poolBufs = DefaultPoolBufs
	}
	poolName := cs.PoolName
	if poolName == "" {
		poolName = cs.Name + "-pkt"
	}
	ringSize := cs.Stack.RingSize
	if ringSize == 0 {
		ringSize = DefaultRingSize
	}
	cvmName := cs.CVMName
	if cvmName == "" {
		cvmName = cs.Name
	}
	cvmBytes := cs.CVMBytes
	if cvmBytes == 0 {
		cvmBytes = DefaultCVMBytes
	}

	if cs.DeviceGate {
		env, err := b.buildDeviceGated(cs, cvmName, poolName, cvmBytes, segBytes, poolBufs, ringSize)
		if err != nil {
			return err
		}
		b.Envs = append(b.Envs, env)
		return nil
	}

	var cvm *intravisor.CVM
	var seg *dpdk.MemSeg
	var err error
	if cs.CVM {
		cvm, err = b.Local.NewCVMSized(cvmName, cvmBytes)
		if err != nil {
			return err
		}
		seg, err = cvmSeg(b.Local, cvm, segBytes)
	} else {
		seg, err = b.Local.baselineSeg(cs.Name, segBytes)
	}
	if err != nil {
		return err
	}

	if cs.Stack.Shards > 0 {
		env, err := b.buildSharded(cs, cvm, seg, poolName, poolBufs, ringSize)
		if err != nil {
			return err
		}
		b.Envs = append(b.Envs, env)
		return nil
	}

	env, err := b.Local.finishEnv(cs.Name, poolName, cvm, seg, cs.Ifs, poolBufs, ringSize)
	if err != nil {
		return err
	}
	b.Envs = append(b.Envs, env)

	if cs.APIGate {
		gates, err := NewStackGates(b.Local.IV, env)
		if err != nil {
			return err
		}
		b.Gates = gates
		b.gatesEnv = env
		for _, appName := range cs.AppCVMs {
			app, err := b.Local.NewCVM(appName)
			if err != nil {
				return err
			}
			b.Apps = append(b.Apps, NewGatedAPI(gates, app, b.Local.K.Mem))
		}
	}
	return nil
}

// buildSharded wires a multi-queue RSS port with one CPU-budgeted
// stack shard per queue pair.
func (b *Bed) buildSharded(cs CompartmentSpec, cvm *intravisor.CVM, seg *dpdk.MemSeg, poolName string, poolBufs, ringSize int) (*Env, error) {
	if b.Sharded != nil {
		return nil, fmt.Errorf("testbed: only one sharded compartment per bed")
	}
	pool, err := dpdk.NewMempool(seg, poolName, poolBufs, dpdk.DefaultDataroom)
	if err != nil {
		return nil, err
	}
	ic := cs.Ifs[0]
	dev, err := dpdk.Probe(b.Local.K.PCI, b.Local.Card.Port(ic.Port).BDF(), seg)
	if err != nil {
		return nil, err
	}
	if err := dev.ConfigureQueues(cs.Stack.Shards, uint32(ringSize), uint32(ringSize), pool); err != nil {
		return nil, err
	}
	if err := dev.Start(); err != nil {
		return nil, err
	}
	ss, err := fstack.NewShardedStack(cs.Stack.Shards, seg, pool, b.Clk)
	if err != nil {
		return nil, err
	}
	var wrap func(shard int, d fstack.EthDevice) fstack.EthDevice
	if cs.Stack.CPUBps > 0 {
		window := cs.Stack.CPUWindowNS
		if window == 0 {
			window = defaultCPUWindow(cs.Stack.CPUBps)
		}
		wrap = func(shard int, d fstack.EthDevice) fstack.EthDevice {
			return cpuDev{dev: d, cpu: sim.NewSerializer(b.Clk, cs.Stack.CPUBps, window)}
		}
	}
	if err := ss.AddNetIF(ifName(ic), dev, ifIP(ic), ifMask(ic), wrap); err != nil {
		return nil, err
	}
	env := &Env{Name: cs.Name, CVM: cvm, Seg: seg, Pool: pool, Devs: []*dpdk.EthDev{dev}, Sharded: ss}
	b.Sharded, b.Dev = ss, dev
	return env, nil
}

// buildDeviceGated wires the split-driver layout: one cVM holds only
// the DPDK driver, a second holds F-Stack + application, and every
// burst crosses sealed gates between them.
func (b *Bed) buildDeviceGated(cs CompartmentSpec, cvmName, poolName string, cvmBytes, segBytes uint64, poolBufs, ringSize int) (*Env, error) {
	devName := cs.DevCVMName
	if devName == "" {
		devName = cs.Name + "-dpdk"
	}
	ic := cs.Ifs[0]

	// The driver compartment — segment, pool, bound port.
	dpdkCVM, err := b.Local.NewCVMSized(devName, cvmBytes)
	if err != nil {
		return nil, err
	}
	devSeg, err := cvmSeg(b.Local, dpdkCVM, segBytes)
	if err != nil {
		return nil, err
	}
	devPool, err := dpdk.NewMempool(devSeg, "dpdk-pkt", poolBufs, dpdk.DefaultDataroom)
	if err != nil {
		return nil, err
	}
	dev, err := dpdk.Probe(b.Local.K.PCI, b.Local.Card.Port(ic.Port).BDF(), devSeg)
	if err != nil {
		return nil, err
	}
	if err := dev.Configure(uint32(ringSize), uint32(ringSize), devPool); err != nil {
		return nil, err
	}
	if err := dev.Start(); err != nil {
		return nil, err
	}
	gates, err := NewDevGates(b.Local.IV, dpdkCVM, dev, devPool)
	if err != nil {
		return nil, err
	}

	// The stack compartment — F-Stack + application, no direct NIC
	// access.
	stackCVM, err := b.Local.NewCVMSized(cvmName, cvmBytes)
	if err != nil {
		return nil, err
	}
	seg, err := cvmSeg(b.Local, stackCVM, segBytes)
	if err != nil {
		return nil, err
	}
	pool, err := dpdk.NewMempool(seg, poolName, poolBufs, dpdk.DefaultDataroom)
	if err != nil {
		return nil, err
	}
	stk := fstack.NewStack(seg, pool, b.Clk)
	gdev := NewGatedEthDev(gates, stackCVM, pool)
	stk.AddNetIF(ifName(ic), gdev, ifIP(ic), ifMask(ic))
	env := &Env{Name: cs.Name, CVM: stackCVM, Seg: seg, Pool: pool, Stk: stk}
	env.Loop = &fstack.Loop{Stk: stk}
	return env, nil
}

// buildPeer wires one link partner per its spec.
func (b *Bed) buildPeer(spec Spec, ps PeerSpec) error {
	lineRate := ps.LineRateBps
	big := ps.Big || lineRate > defaultLineRate || ps.Link != nil
	segBytes, poolBufs := uint64(DefaultSegBytes), DefaultPoolBufs
	if big {
		segBytes, poolBufs = bigPeerSegBytes, bigPeerPoolBufs
	}
	if ps.SegBytes != 0 {
		segBytes = ps.SegBytes
	}
	if ps.PoolBufs != 0 {
		poolBufs = ps.PoolBufs
	}
	name := peerName(ps)
	m, err := newMachine(machineConfig{
		Name: name, Clk: spec.Clk, Ports: defaultPeerPorts,
		LineRateBps: lineRate, MACLast: peerMAC(ps),
		Arena: b.arena,
	})
	if err != nil {
		return err
	}
	seg, err := m.baselineSeg(name, segBytes)
	if err != nil {
		return err
	}
	ringSize := ps.Stack.RingSize
	if ringSize == 0 {
		ringSize = DefaultRingSize
	}
	env, err := m.finishEnv(name, name+"-pkt", nil, seg,
		[]IfSpec{{Port: 0, Name: "eth0", IP: PeerIP(ps.Port), Mask: Mask24}},
		poolBufs, ringSize)
	if err != nil {
		return err
	}
	p := &Peer{M: m, Env: env, Port: ps.Port}
	localPort := b.Local.Card.Port(ps.Port)
	if ps.Link != nil {
		p.Link = netem.ConnectAsym(spec.Clk, localPort, m.Card.Port(0), ps.Link.ToPeer, ps.Link.ToLocal)
	} else {
		nic.Connect(localPort, m.Card.Port(0))
	}
	b.Peers = append(b.Peers, p)
	b.Links = append(b.Links, p.Link)
	return nil
}

// applyStackSpec applies the tuning half of a StackSpec to a built
// environment (single stack or every shard).
func applyStackSpec(env *Env, ss StackSpec) {
	stacks := []*fstack.Stack{}
	if env.Sharded != nil {
		for i := 0; i < env.Sharded.NumShards(); i++ {
			stacks = append(stacks, env.Sharded.Shard(i))
		}
	} else if env.Stk != nil {
		stacks = append(stacks, env.Stk)
	}
	for _, stk := range stacks {
		if ss.RTOMinNS > 0 {
			stk.SetRTOMin(ss.RTOMinNS)
		}
		if ss.Tuning != nil {
			stk.SetTCPTuning(*ss.Tuning)
		}
	}
}
