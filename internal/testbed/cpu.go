package testbed

import (
	"repro/internal/dpdk"
	"repro/internal/fstack"
	"repro/internal/sim"
)

// cpuDev models one core's packet-processing budget in front of a
// shard's queue pair: every frame byte moved in or out of the stack is
// charged against a serializer, and when the core is booked out the
// burst returns empty — ring backpressure, exactly how an overloaded
// poll loop behaves. (The wire and the bus are modeled elsewhere; a
// sharded environment needs the core to be the bottleneck, or shard
// counts could not matter.)
type cpuDev struct {
	dev fstack.EthDevice
	cpu *sim.Serializer
}

// cpuChunk bounds how many frames are harvested per admission check,
// keeping the overshoot past the booking window small (a booked-out
// core must come back quickly — the stack's ACKs ride the same budget,
// and coarse gating would drop them for hundreds of µs at a time).
const cpuChunk = 4

// defaultCPUWindow is three full-size frame times at the given core
// budget, the booking window used when a spec gives none.
func defaultCPUWindow(cpuBps float64) int64 {
	return int64(3 * 1538 * 8e9 / cpuBps)
}

func (d cpuDev) RxBurst(out []*dpdk.Mbuf) int {
	total := 0
	for total < len(out) {
		if !d.cpu.CanAdmit() {
			break
		}
		k := min(cpuChunk, len(out)-total)
		n := d.dev.RxBurst(out[total : total+k])
		for i := 0; i < n; i++ {
			d.cpu.Book(out[total+i].Len())
		}
		total += n
		if n < k {
			break
		}
	}
	return total
}

// TxBurst charges the core for every byte it transmits but never
// refuses on CPU grounds: by the time the stack hands a frame over, the
// work has been done, and the TX descriptor ring — not a dropped frame
// — is where a busy core's output waits. (Refusing here would silently
// discard bare ACKs, which have no retransmit path; the throttle on the
// send side is that every booked byte delays the core's own RX
// processing, inflating the flow's RTT against its window.)
func (d cpuDev) TxBurst(bufs []*dpdk.Mbuf) int {
	// Capture lengths first: accepted mbufs pass to the driver and may
	// be recycled before we charge for them.
	lens := make([]int, len(bufs))
	for i, m := range bufs {
		lens[i] = m.Len()
	}
	n := d.dev.TxBurst(bufs)
	for i := 0; i < n; i++ {
		d.cpu.Book(lens[i])
	}
	return n
}

func (d cpuDev) Poll()             { d.dev.Poll() }
func (d cpuDev) MAC() [6]byte      { return d.dev.MAC() }
func (d cpuDev) Stats() dpdk.Stats { return d.dev.Stats() }

// NextDeadline passes the inner device's deadline through unchanged: a
// booked-out core only delays RX work the device already reports, and
// an early wake-up is a no-op iteration, never a missed event. (The
// booking window is a few frame times, so the tick fallback while the
// core is saturated costs little.)
func (d cpuDev) NextDeadline(now int64) int64 { return d.dev.NextDeadline(now) }
