package testbed

import (
	"encoding/binary"

	"repro/internal/cheri"
	"repro/internal/dpdk"
	"repro/internal/fstack"
	"repro/internal/hostos"
	"repro/internal/intravisor"
)

// Device gates implement the paper's first future-work layout (§VI):
// "the separation of DPDK from F-Stack and the application". One cVM
// holds only the DPDK driver (and the NIC's DMA window); another holds
// F-Stack plus the application. Every RX/TX burst crosses a sealed
// gate between the two compartments, with the frames copied through a
// bounded staging buffer — neither compartment can reach the other's
// memory. A CompartmentSpec with DeviceGate set builds this layout.

// Device-gate staging layout inside the stack cVM's window (distinct
// from the GatedAPI staging, which Scenario 3 does not use).
const (
	devStageOff  = 0x200000
	devStageSize = 64 * 1024
	// devBurstMax frames per crossing; 32 frames of 1514 bytes plus
	// framing fit the staging buffer.
	devBurstMax = 32
)

// DevGates exports a DPDK compartment's ethdev as sealed entry points.
type DevGates struct {
	rx, tx, poll, stats *intravisor.Gate
	mac                 [6]byte
	// dev is the inner device, retained for deadline queries only:
	// NextDeadline is simulator introspection, not modeled datapath,
	// so it must not burn a gate crossing (which would perturb the
	// crossing counts the tick-stepped reference produces).
	dev *dpdk.EthDev
}

// NewDevGates wraps dev (owned by dpdkCVM, with buffers in devPool)
// into cross-compartment gates.
func NewDevGates(iv *intravisor.Intravisor, dpdkCVM *intravisor.CVM, dev *dpdk.EthDev, devPool *dpdk.Mempool) (*DevGates, error) {
	mem := iv.Mem()
	g := &DevGates{mac: dev.MAC(), dev: dev}
	mk := func(fn intravisor.GateFunc) (*intravisor.Gate, error) {
		return iv.NewGate(dpdkCVM, fn)
	}
	var err error
	// rx: harvest up to a[0] frames; pack [u16 len][bytes]... through
	// the caller's staging capability; returns the frame count.
	if g.rx, err = mk(func(_ *intravisor.CVM, a hostos.Args, stage cheri.Cap) (uint64, hostos.Errno) {
		n := int(a[0])
		if n > devBurstMax {
			n = devBurstMax
		}
		var burst [devBurstMax]*dpdk.Mbuf
		k := dev.RxBurst(burst[:n])
		addr := stage.Addr()
		packed := 0
		for i := 0; i < k; i++ {
			m := burst[i]
			data, err := m.BytesRO()
			if err == nil {
				var hdr [2]byte
				binary.LittleEndian.PutUint16(hdr[:], uint16(len(data)))
				if mem.Store(stage, addr, hdr[:]) == nil &&
					mem.Store(stage, addr+2, data) == nil {
					addr += 2 + uint64(len(data))
					packed++
				}
			}
			m.Free()
		}
		return uint64(packed), hostos.OK
	}); err != nil {
		return nil, err
	}
	// tx: unpack a[0] frames from the staging capability into the DPDK
	// compartment's own mbufs and transmit; returns accepted count.
	if g.tx, err = mk(func(_ *intravisor.CVM, a hostos.Args, stage cheri.Cap) (uint64, hostos.Errno) {
		n := int(a[0])
		addr := stage.Addr()
		accepted := 0
		for i := 0; i < n && i < devBurstMax; i++ {
			var hdr [2]byte
			if mem.Load(stage, addr, hdr[:]) != nil {
				break
			}
			length := int(binary.LittleEndian.Uint16(hdr[:]))
			m, ok := devPool.Get()
			if !ok {
				break
			}
			dst, err := m.Append(length)
			if err != nil || mem.Load(stage, addr+2, dst) != nil {
				m.Free()
				break
			}
			if dev.TxBurst([]*dpdk.Mbuf{m}) != 1 {
				m.Free()
				break
			}
			addr += 2 + uint64(length)
			accepted++
		}
		return uint64(accepted), hostos.OK
	}); err != nil {
		return nil, err
	}
	if g.poll, err = mk(func(_ *intravisor.CVM, _ hostos.Args, _ cheri.Cap) (uint64, hostos.Errno) {
		dev.Poll()
		return 0, hostos.OK
	}); err != nil {
		return nil, err
	}
	if g.stats, err = mk(func(_ *intravisor.CVM, _ hostos.Args, stage cheri.Cap) (uint64, hostos.Errno) {
		st := dev.Stats()
		var buf [40]byte
		binary.LittleEndian.PutUint64(buf[0:], st.IPackets)
		binary.LittleEndian.PutUint64(buf[8:], st.OPackets)
		binary.LittleEndian.PutUint64(buf[16:], st.IBytes)
		binary.LittleEndian.PutUint64(buf[24:], st.OBytes)
		binary.LittleEndian.PutUint64(buf[32:], st.IMissed)
		if mem.Store(stage, stage.Addr(), buf[:]) != nil {
			return 0, hostos.EFAULT
		}
		return 0, hostos.OK
	}); err != nil {
		return nil, err
	}
	return g, nil
}

// GatedEthDev is the stack-compartment side: it satisfies
// fstack.EthDevice, crossing into the DPDK compartment per burst.
type GatedEthDev struct {
	g      *DevGates
	caller *intravisor.CVM // the F-Stack cVM
	pool   *dpdk.Mempool   // stack-side pool for harvested frames
}

var _ fstack.EthDevice = (*GatedEthDev)(nil)

// NewGatedEthDev wires the stack cVM to the device gates.
func NewGatedEthDev(g *DevGates, stackCVM *intravisor.CVM, pool *dpdk.Mempool) *GatedEthDev {
	return &GatedEthDev{g: g, caller: stackCVM, pool: pool}
}

// stage derives the staging capability for one crossing.
func (d *GatedEthDev) stage() (cheri.Cap, error) {
	return d.caller.DeriveBuf(d.caller.Base()+devStageOff, devStageSize)
}

// MAC returns the port's hardware address (cached at gate creation).
func (d *GatedEthDev) MAC() [6]byte { return d.g.mac }

// RxBurst pulls frames across the compartment boundary into stack-side
// mbufs.
func (d *GatedEthDev) RxBurst(out []*dpdk.Mbuf) int {
	want := min(len(out), devBurstMax)
	if want == 0 {
		return 0
	}
	stage, err := d.stage()
	if err != nil {
		return 0
	}
	r, errno := d.g.rx.Call(d.caller, hostos.Args{uint64(want)}, stage)
	if errno != hostos.OK || r == 0 {
		return 0
	}
	addr := d.caller.Base() + devStageOff
	got := 0
	for i := 0; i < int(r); i++ {
		var hdr [2]byte
		if d.caller.Load(addr, hdr[:]) != nil {
			break
		}
		length := int(binary.LittleEndian.Uint16(hdr[:]))
		m, ok := d.pool.Get()
		if !ok {
			break // frames beyond this point are lost, as on pool exhaustion
		}
		dst, err := m.Append(length)
		if err != nil || d.caller.Load(addr+2, dst) != nil {
			m.Free()
			break
		}
		out[got] = m
		got++
		addr += 2 + uint64(length)
	}
	return got
}

// TxBurst pushes frames across the boundary; accepted mbufs are freed
// here (ownership passes to the driver, as with the direct ethdev).
func (d *GatedEthDev) TxBurst(bufs []*dpdk.Mbuf) int {
	n := min(len(bufs), devBurstMax)
	if n == 0 {
		return 0
	}
	stage, err := d.stage()
	if err != nil {
		return 0
	}
	addr := d.caller.Base() + devStageOff
	packed := 0
	for _, m := range bufs[:n] {
		data, err := m.BytesRO()
		if err != nil {
			break
		}
		var hdr [2]byte
		binary.LittleEndian.PutUint16(hdr[:], uint16(len(data)))
		if d.caller.Store(addr, hdr[:]) != nil || d.caller.Store(addr+2, data) != nil {
			break
		}
		addr += 2 + uint64(len(data))
		packed++
	}
	r, errno := d.g.tx.Call(d.caller, hostos.Args{uint64(packed)}, stage)
	if errno != hostos.OK {
		return 0
	}
	for i := 0; i < int(r); i++ {
		bufs[i].Free()
	}
	return int(r)
}

// Poll advances the device across the gate.
func (d *GatedEthDev) Poll() {
	d.g.poll.Call(d.caller, hostos.Args{}, cheri.NullCap)
}

// NextDeadline asks the inner device directly — no gate crossing; see
// the DevGates.dev comment.
func (d *GatedEthDev) NextDeadline(now int64) int64 {
	return d.g.dev.NextDeadline(now)
}

// Stats reads the device counters across the gate.
func (d *GatedEthDev) Stats() dpdk.Stats {
	stage, err := d.stage()
	if err != nil {
		return dpdk.Stats{}
	}
	if _, errno := d.g.stats.Call(d.caller, hostos.Args{}, stage); errno != hostos.OK {
		return dpdk.Stats{}
	}
	var buf [40]byte
	if d.caller.Load(d.caller.Base()+devStageOff, buf[:]) != nil {
		return dpdk.Stats{}
	}
	return dpdk.Stats{
		IPackets: binary.LittleEndian.Uint64(buf[0:]),
		OPackets: binary.LittleEndian.Uint64(buf[8:]),
		IBytes:   binary.LittleEndian.Uint64(buf[16:]),
		OBytes:   binary.LittleEndian.Uint64(buf[24:]),
		IMissed:  binary.LittleEndian.Uint64(buf[32:]),
	}
}
