// Package testbed is the declarative experiment-construction layer: a
// Spec describes a whole topology — the local Morello-like machine, its
// compartments (Baseline processes or capability cVMs, optionally
// sharded over RSS queue pairs, optionally split behind API or device
// gates), and the remote link partners with their (possibly impaired,
// possibly per-direction-asymmetric) links — and Build wires it into a
// running Bed.
//
// The package replaces the constructor explosion that grew in
// internal/core as each experimental axis arrived (sized environments,
// cVM-hosted environments, rate-matched peers, netem-linked peers):
// every axis is now a field on a spec struct, and axes compose freely.
// Scenario 6 — a sharded stack driving flows through an impaired WAN
// bottleneck — is a Spec with both knobs set, not a ninth constructor.
//
// What is declarative: topology, sizing, addressing (with collision
// checks), gate policy, stack tuning, link impairments, and
// observability (Spec.Obs selects the internal/obs instruments —
// flight-recorder trace, metrics sampling, latency histograms, link
// pcap captures — wired into every layer at build time; the zero
// ObsSpec wires nothing and leaves the bed's behavior byte-identical).
// What stays imperative: the experiment itself — callers attach
// applications to the Bed's loops and drive virtual time
// (internal/core's measurement drivers do exactly that).
package testbed
