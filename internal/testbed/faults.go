package testbed

import (
	"fmt"

	"repro/internal/cheri"
	"repro/internal/faultplane"
	"repro/internal/fstack"
	"repro/internal/obs"
)

// FaultSpec declares a bed's deterministic fault schedule: carrier
// flaps on peer links, NIC queue stalls and DMA-fault bursts, and
// injected capability faults that trap a chosen compartment mid-run,
// plus the supervisor's restart policy over the trapped compartments.
// The zero value keeps the fault plane completely off: nothing is
// wired, no event fires, and the bed's behavior is bit-identical to one
// built without it.
type FaultSpec struct {
	// LinkFlaps installs carrier flap schedules on peer links.
	LinkFlaps []LinkFlapSpec
	// NICFaults schedules queue stalls and DMA-fault bursts on local
	// devices.
	NICFaults []NICFaultSpec
	// CapFaults schedules injected capability faults that trap a
	// compartment (its cVM dies, its stack crashes silently).
	CapFaults []CapFaultSpec
	// Restart is the supervisor's policy over trapped compartments.
	Restart RestartSpec
}

// Enabled reports whether any fault is declared.
func (f FaultSpec) Enabled() bool {
	return len(f.LinkFlaps) > 0 || len(f.NICFaults) > 0 || len(f.CapFaults) > 0
}

// LinkFlapSpec is one direction's carrier flap schedule on a peer link.
type LinkFlapSpec struct {
	// Peer names the link (defaults resolve like PeerSpec.Name).
	Peer string
	// Dir selects the direction: 0 impairs local-to-peer, 1 the
	// reverse (the netem direction plan).
	Dir int
	// Toggles are the virtual instants at which the carrier flips,
	// starting from up.
	Toggles []int64
}

// NICFaultSpec schedules hardware faults on one local device queue.
type NICFaultSpec struct {
	// Env names the owning compartment; Dev indexes its devices.
	Env string
	Dev int
	// Queue is the queue pair to stall.
	Queue int
	// StallAt/ResumeAt bound one stall window (both zero = no stall).
	StallAt  int64
	ResumeAt int64
	// DMAFaultAt injects a budget of DMAFaults transient DMA faults at
	// that instant (zero DMAFaults = none).
	DMAFaultAt int64
	DMAFaults  int64
}

// CapFaultSpec schedules injected capability faults against one
// compartment.
type CapFaultSpec struct {
	// Env names the compartment to trap.
	Env string
	// At lists the injection instants.
	At []int64
}

// RestartSpec is the supervisor policy (zero fields take the
// faultplane defaults) plus the blast-radius switch.
type RestartSpec struct {
	BackoffNS    int64
	MaxBackoffNS int64
	MaxRetries   int
	// FateSharing models the baseline layout: the stack is one
	// monolithic process, so a capability fault scheduled against any
	// compartment takes every environment down and the supervisor
	// restarts them all. Off, a fault is contained to its compartment.
	FateSharing bool
}

// policy resolves the spec against the defaults.
func (r RestartSpec) policy() faultplane.Policy {
	p := faultplane.DefaultPolicy()
	if r.BackoffNS > 0 {
		p.BackoffNS = r.BackoffNS
	}
	if r.MaxBackoffNS > 0 {
		p.MaxBackoffNS = r.MaxBackoffNS
	}
	if r.MaxRetries > 0 {
		p.MaxRetries = r.MaxRetries
	}
	return p
}

// validateFaults checks the fault plan against the topology plan.
func (s Spec) validateFaults() error {
	f := s.Faults
	envs := map[string]bool{}
	for _, cs := range s.Compartments {
		envs[cs.Name] = true
	}
	peers := map[string]bool{}
	for _, ps := range s.Peers {
		peers[peerName(ps)] = ps.Link != nil
	}
	for _, lf := range f.LinkFlaps {
		linked, ok := peers[lf.Peer]
		if !ok {
			return fmt.Errorf("testbed: link flap references unknown peer %q", lf.Peer)
		}
		if !linked {
			return fmt.Errorf("testbed: link flap on peer %q, which has a plain wire (no netem link)", lf.Peer)
		}
		if lf.Dir != 0 && lf.Dir != 1 {
			return fmt.Errorf("testbed: link flap on peer %q: direction %d not in {0,1}", lf.Peer, lf.Dir)
		}
	}
	for _, nf := range f.NICFaults {
		if !envs[nf.Env] {
			return fmt.Errorf("testbed: NIC fault references unknown compartment %q", nf.Env)
		}
		if nf.ResumeAt < nf.StallAt {
			return fmt.Errorf("testbed: NIC fault on %q: resume %d before stall %d", nf.Env, nf.ResumeAt, nf.StallAt)
		}
		if nf.DMAFaults < 0 {
			return fmt.Errorf("testbed: NIC fault on %q: negative DMA-fault budget", nf.Env)
		}
	}
	for _, cf := range f.CapFaults {
		if !envs[cf.Env] {
			return fmt.Errorf("testbed: capability fault references unknown compartment %q", cf.Env)
		}
	}
	return nil
}

// envTarget adapts one environment to the supervisor's Target
// interface. For a cVM-hosted compartment the trap predicate is the
// cVM's own state; a Baseline process has no cVM, so the injected trap
// latches here.
type envTarget struct {
	b       *Bed
	e       *Env
	trapped bool
}

func (t *envTarget) Name() string { return t.e.Name }

func (t *envTarget) Trapped() bool {
	if t.e.CVM != nil {
		return t.e.CVM.Trapped()
	}
	return t.trapped
}

// Restart re-creates the compartment's world: revive the cVM over its
// window, re-seal the API gates over the fresh DDC, bring the stack
// back up, then let the experiment's hook re-establish listeners and
// re-register epoll sets (what the application's main would do).
func (t *envTarget) Restart(now int64) error {
	if t.e.CVM != nil {
		if err := t.e.CVM.Restart(); err != nil {
			return err
		}
		if t.b.Gates != nil && t.b.gatesEnv == t.e {
			if err := t.b.Gates.Rebind(t.b.Local.IV, t.e); err != nil {
				return err
			}
		}
	}
	for _, stk := range envStacks(t.e) {
		stk.Restart()
	}
	t.trapped = false
	if t.b.RestartHook != nil {
		t.b.RestartHook(t.e, now)
	}
	return nil
}

// envStacks lists an environment's stacks (one, or one per shard).
func envStacks(e *Env) []*fstack.Stack {
	if e.Sharded != nil {
		out := make([]*fstack.Stack, e.Sharded.NumShards())
		for i := range out {
			out[i] = e.Sharded.Shard(i)
		}
		return out
	}
	if e.Stk != nil {
		return []*fstack.Stack{e.Stk}
	}
	return nil
}

// trap kills one compartment: the cVM dies on an (injected) capability
// fault and its stack crashes silently. The supervisor notices in the
// same virtual step and schedules the restart.
func (t *envTarget) trap() {
	if t.e.CVM != nil {
		t.e.CVM.Trap(&cheri.Fault{Kind: cheri.FaultBounds, Op: "injected"})
	}
	t.trapped = true
	for _, stk := range envStacks(t.e) {
		stk.Crash()
	}
}

// wireFaults builds the fault plane and supervisor over a finished
// topology. Only called when spec.Faults.Enabled().
func (b *Bed) wireFaults(spec Spec) error {
	fs := spec.Faults
	sup := faultplane.NewSupervisor(fs.Restart.policy())
	var tr *obs.Trace
	if b.Obs != nil {
		tr = b.Obs.Trace
		sup.SetTrace(tr)
	}
	targets := make(map[string]*envTarget, len(b.Envs))
	ordered := make([]*envTarget, 0, len(b.Envs))
	for i, e := range b.Envs {
		t := &envTarget{b: b, e: e}
		targets[e.Name] = t
		ordered = append(ordered, t)
		sup.Watch(t, uint16(i))
	}
	envIdx := func(name string) int64 {
		for i, e := range b.Envs {
			if e.Name == name {
				return int64(i)
			}
		}
		return -1
	}

	// Carrier flaps go straight to the links — netem replays its own
	// schedule on the frame timeline.
	for _, lf := range fs.LinkFlaps {
		for i, p := range b.Peers {
			if p.Env.Name == lf.Peer {
				b.Links[i].SetCarrierSchedule(lf.Dir, lf.Toggles)
			}
		}
	}

	var evs []faultplane.Event
	for _, nf := range fs.NICFaults {
		nf := nf
		e := b.Envs[envIdx(nf.Env)]
		dev := e.Devs[nf.Dev]
		src := uint16(envIdx(nf.Env))
		if nf.ResumeAt > nf.StallAt {
			evs = append(evs,
				faultplane.Event{At: nf.StallAt, Fire: func(now int64) {
					dev.SetQueueStall(nf.Queue, true)
					tr.Record(now, obs.EvFault, src, obs.FaultNICStall, 0, int64(nf.Queue))
				}},
				faultplane.Event{At: nf.ResumeAt, Fire: func(now int64) {
					dev.SetQueueStall(nf.Queue, false)
				}})
		}
		if nf.DMAFaults > 0 {
			evs = append(evs, faultplane.Event{At: nf.DMAFaultAt, Fire: func(now int64) {
				dev.InjectDMAFaults(nf.DMAFaults)
				tr.Record(now, obs.EvFault, src, obs.FaultDMA, nf.DMAFaults, int64(nf.Queue))
			}})
		}
	}
	for _, cf := range fs.CapFaults {
		t := targets[cf.Env]
		for _, at := range cf.At {
			fire := func(now int64) { t.trap() }
			if fs.Restart.FateSharing {
				// Baseline: the whole stack process dies with it.
				fire = func(now int64) {
					for _, o := range ordered {
						o.trap()
					}
				}
			}
			evs = append(evs, faultplane.Event{At: at, Fire: fire})
		}
	}
	b.Faults = faultplane.NewPlane(evs)
	b.Super = sup
	return nil
}

// FaultStep advances the fault plane and the supervisor to now. The
// experiment driver calls it from the application phase of every
// iteration; with no FaultSpec both halves are nil and this is two
// nil checks.
func (b *Bed) FaultStep(now int64) {
	b.Faults.Step(now)
	b.Super.Step(now)
}
