package testbed

import (
	"math"
	"testing"
)

func TestZeroFaultSpecIsInert(t *testing.T) {
	bed, err := Build(minimalSpec())
	if err != nil {
		t.Fatal(err)
	}
	if bed.Faults != nil || bed.Super != nil {
		t.Fatal("zero FaultSpec wired a fault plane")
	}
	// The nil halves must be steppable and quiescent.
	bed.FaultStep(0)
	if d := bed.Faults.NextDeadline(0); d != math.MaxInt64 {
		t.Fatalf("nil plane deadline = %d", d)
	}
	if d := bed.Super.NextDeadline(0); d != math.MaxInt64 {
		t.Fatalf("nil supervisor deadline = %d", d)
	}
}

func TestFaultSpecValidation(t *testing.T) {
	s := minimalSpec()
	s.Faults.CapFaults = []CapFaultSpec{{Env: "nosuch", At: []int64{1}}}
	wantBuildError(t, s, "unknown compartment")

	s = minimalSpec()
	s.Faults.NICFaults = []NICFaultSpec{{Env: "proc", StallAt: 100, ResumeAt: 50}}
	wantBuildError(t, s, "resume")

	s = minimalSpec()
	s.Faults.LinkFlaps = []LinkFlapSpec{{Peer: "peer0", Toggles: []int64{1}}}
	wantBuildError(t, s, "plain wire")

	s = minimalSpec()
	s.Faults.LinkFlaps = []LinkFlapSpec{{Peer: "ghost", Toggles: []int64{1}}}
	wantBuildError(t, s, "unknown peer")
}

func TestCapFaultTrapAndSupervisedRestart(t *testing.T) {
	s := minimalSpec()
	s.Compartments[0].CVM = true
	s.Faults.CapFaults = []CapFaultSpec{{Env: "proc", At: []int64{1000}}}
	s.Faults.Restart = RestartSpec{BackoffNS: 500, MaxBackoffNS: 500, MaxRetries: 3}
	bed, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	env := bed.Envs[0]
	var hooked int64
	bed.RestartHook = func(e *Env, now int64) {
		if e != env {
			t.Errorf("hook for wrong env %q", e.Name)
		}
		hooked = now
	}

	if d := bed.Faults.NextDeadline(0); d != 1000 {
		t.Fatalf("fault scheduled at %d, want 1000", d)
	}
	bed.FaultStep(1000)
	if !env.CVM.Trapped() || !env.Stk.Down() {
		t.Fatalf("after injection: trapped=%v down=%v", env.CVM.Trapped(), env.Stk.Down())
	}
	if d := bed.Super.NextDeadline(1000); d != 1500 {
		t.Fatalf("restart scheduled at %d, want 1500", d)
	}
	bed.FaultStep(1500)
	if env.CVM.Trapped() || env.Stk.Down() {
		t.Fatalf("after restart: trapped=%v down=%v", env.CVM.Trapped(), env.Stk.Down())
	}
	if hooked != 1500 || bed.Super.Restarts != 1 {
		t.Fatalf("hook at %d, restarts %d", hooked, bed.Super.Restarts)
	}
}

func TestFateSharingTrapsEveryEnv(t *testing.T) {
	s := minimalSpec()
	s.Compartments = []CompartmentSpec{
		{Name: "shard0", Ifs: []IfSpec{{Port: 0}}},
		{Name: "shard1", Ifs: []IfSpec{{Port: 1}}},
	}
	s.Faults.CapFaults = []CapFaultSpec{{Env: "shard0", At: []int64{100}}}
	s.Faults.Restart = RestartSpec{BackoffNS: 10, MaxBackoffNS: 10, MaxRetries: 1, FateSharing: true}
	bed, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	bed.FaultStep(100)
	for _, e := range bed.Envs {
		if !e.Stk.Down() {
			t.Fatalf("fate sharing: %s survived a fault aimed at shard0", e.Name)
		}
	}
	bed.FaultStep(110)
	for _, e := range bed.Envs {
		if e.Stk.Down() {
			t.Fatalf("%s not restarted", e.Name)
		}
	}
	if bed.Super.Restarts != 2 {
		t.Fatalf("restarts = %d, want both envs", bed.Super.Restarts)
	}
}
