package testbed

import (
	"encoding/binary"
	"fmt"

	"repro/internal/cheri"
	"repro/internal/fstack"
	"repro/internal/hostos"
	"repro/internal/intravisor"
)

// StackGates is the Scenario 2 wrapper layer: one sealed entry gate per
// exported F-Stack API function ("we also implemented the wrapper
// functions to the API of F-Stack to do the cross-compartment jump
// between the running application and the cVM1", §III-B). Every call
// crosses from the application compartment into the stack compartment
// and takes the F-Stack mutex there.
type StackGates struct {
	stk *fstack.Stack

	socket, bind, listen, accept, connect *intravisor.Gate
	read, write, closeG                   *intravisor.Gate
	epCreate, epCtl, epWait               *intravisor.Gate
}

// Rebind re-exports every gate after the stack compartment restarted.
// The old sealed pairs were derived from the dead incarnation's DDC;
// the supervisor mints fresh ones and the wrapper layer swaps them in
// place, so application-side GatedAPI handles keep working untouched.
func (g *StackGates) Rebind(iv *intravisor.Intravisor, stackEnv *Env) error {
	ng, err := NewStackGates(iv, stackEnv)
	if err != nil {
		return err
	}
	*g = *ng
	return nil
}

// ip4FromU64 decodes an IPv4 address passed as a scalar argument.
func ip4FromU64(v uint64) fstack.IPv4Addr {
	return fstack.IP4(byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// u64FromIP4 encodes an IPv4 address as a scalar argument.
func u64FromIP4(ip fstack.IPv4Addr) uint64 {
	return uint64(ip[0])<<24 | uint64(ip[1])<<16 | uint64(ip[2])<<8 | uint64(ip[3])
}

// NewStackGates exports the F-Stack API of stackEnv's stack from its
// cVM.
func NewStackGates(iv *intravisor.Intravisor, stackEnv *Env) (*StackGates, error) {
	if stackEnv.CVM == nil {
		return nil, fmt.Errorf("testbed: gates need a cVM-hosted stack")
	}
	s := stackEnv.Stk
	mem := iv.Mem()
	g := &StackGates{stk: s}
	mk := func(fn intravisor.GateFunc) (*intravisor.Gate, error) {
		return iv.NewGate(stackEnv.CVM, fn)
	}
	var err error
	if g.socket, err = mk(func(_ *intravisor.CVM, a hostos.Args, _ cheri.Cap) (uint64, hostos.Errno) {
		fd, errno := s.Socket(int(a[0]))
		return uint64(fd), errno
	}); err != nil {
		return nil, err
	}
	if g.bind, err = mk(func(_ *intravisor.CVM, a hostos.Args, _ cheri.Cap) (uint64, hostos.Errno) {
		return 0, s.Bind(int(a[0]), ip4FromU64(a[1]), uint16(a[2]))
	}); err != nil {
		return nil, err
	}
	if g.listen, err = mk(func(_ *intravisor.CVM, a hostos.Args, _ cheri.Cap) (uint64, hostos.Errno) {
		return 0, s.Listen(int(a[0]), int(a[1]))
	}); err != nil {
		return nil, err
	}
	if g.accept, err = mk(func(_ *intravisor.CVM, a hostos.Args, addrOut cheri.Cap) (uint64, hostos.Errno) {
		nfd, ip, port, errno := s.Accept(int(a[0]))
		if errno != hostos.OK {
			return 0, errno
		}
		// Write the peer address through the caller's sockaddr buffer.
		var sa [8]byte
		copy(sa[0:4], ip[:])
		binary.LittleEndian.PutUint16(sa[4:6], port)
		if addrOut.Tag() {
			if err := mem.Store(addrOut, addrOut.Addr(), sa[:]); err != nil {
				return 0, hostos.EFAULT
			}
		}
		return uint64(nfd), hostos.OK
	}); err != nil {
		return nil, err
	}
	if g.connect, err = mk(func(_ *intravisor.CVM, a hostos.Args, _ cheri.Cap) (uint64, hostos.Errno) {
		return 0, s.Connect(int(a[0]), ip4FromU64(a[1]), uint16(a[2]))
	}); err != nil {
		return nil, err
	}
	if g.read, err = mk(func(_ *intravisor.CVM, a hostos.Args, dst cheri.Cap) (uint64, hostos.Errno) {
		n, errno := s.ReadCap(int(a[0]), mem, dst, int(a[1]))
		return uint64(n), errno
	}); err != nil {
		return nil, err
	}
	if g.write, err = mk(func(_ *intravisor.CVM, a hostos.Args, src cheri.Cap) (uint64, hostos.Errno) {
		n, errno := s.WriteCap(int(a[0]), mem, src, int(a[1]))
		return uint64(n), errno
	}); err != nil {
		return nil, err
	}
	if g.closeG, err = mk(func(_ *intravisor.CVM, a hostos.Args, _ cheri.Cap) (uint64, hostos.Errno) {
		return 0, s.Close(int(a[0]))
	}); err != nil {
		return nil, err
	}
	if g.epCreate, err = mk(func(_ *intravisor.CVM, _ hostos.Args, _ cheri.Cap) (uint64, hostos.Errno) {
		return uint64(s.EpollCreate()), hostos.OK
	}); err != nil {
		return nil, err
	}
	if g.epCtl, err = mk(func(_ *intravisor.CVM, a hostos.Args, _ cheri.Cap) (uint64, hostos.Errno) {
		return 0, s.EpollCtl(int(a[0]), int(a[1]), int(a[2]), uint32(a[3]))
	}); err != nil {
		return nil, err
	}
	if g.epWait, err = mk(func(_ *intravisor.CVM, a hostos.Args, evOut cheri.Cap) (uint64, hostos.Errno) {
		maxEv := int(a[1])
		evs := make([]fstack.Event, maxEv)
		n, errno := s.EpollWait(int(a[0]), evs)
		if errno != hostos.OK {
			return 0, errno
		}
		// Marshal events (fd u32, events u32) through the caller's
		// buffer capability.
		out := make([]byte, 8*n)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(out[i*8:], uint32(evs[i].FD))
			binary.LittleEndian.PutUint32(out[i*8+4:], evs[i].Events)
		}
		if n > 0 {
			if err := mem.Store(evOut, evOut.Addr(), out); err != nil {
				return 0, hostos.EFAULT
			}
		}
		return uint64(n), hostos.OK
	}); err != nil {
		return nil, err
	}
	return g, nil
}

// Staging-area layout inside an application cVM's window.
// StageWriteSize is exported as the gated Write's per-call ceiling.
const (
	stageWriteOff  = 0x1000
	StageWriteSize = 256 * 1024
	stageReadOff   = stageWriteOff + StageWriteSize
	stageReadSize  = 128 * 1024
	stageAddrOff   = stageReadOff + stageReadSize // 8-byte sockaddr
	stageEventsOff = stageAddrOff + 16
	stageEventsMax = 64 // events of 8 bytes
)

// GatedAPI is the application-side view of the F-Stack API in
// Scenario 2. It satisfies iperf.API; every method is a cross-cVM call.
type GatedAPI struct {
	G   *StackGates
	App *intravisor.CVM
	mem *cheri.TMem

	// staged tracks which application buffer currently sits in the
	// write staging area, so repeated sends of the same buffer (iperf's
	// pattern — and any zero-copy-minded app) skip the refresh.
	stagedPtr *byte
	stagedLen int
}

// NewGatedAPI wires an application cVM to the stack gates.
func NewGatedAPI(g *StackGates, app *intravisor.CVM, mem *cheri.TMem) *GatedAPI {
	return &GatedAPI{G: g, App: app, mem: mem}
}

// stageCap derives a capability over a staging area of the app window.
func (a *GatedAPI) stageCap(off uint64, n int) (cheri.Cap, error) {
	return a.App.DeriveBuf(a.App.Base()+off, uint64(n))
}

// Socket creates a descriptor.
func (a *GatedAPI) Socket(typ int) (int, hostos.Errno) {
	r, errno := a.G.socket.Call(a.App, hostos.Args{uint64(typ)}, cheri.NullCap)
	return int(r), errno
}

// Bind attaches a local address.
func (a *GatedAPI) Bind(fd int, ip fstack.IPv4Addr, port uint16) hostos.Errno {
	_, errno := a.G.bind.Call(a.App, hostos.Args{uint64(fd), u64FromIP4(ip), uint64(port)}, cheri.NullCap)
	return errno
}

// Listen makes a socket passive.
func (a *GatedAPI) Listen(fd, backlog int) hostos.Errno {
	_, errno := a.G.listen.Call(a.App, hostos.Args{uint64(fd), uint64(backlog)}, cheri.NullCap)
	return errno
}

// Accept dequeues a connection; the peer address crosses through the
// sockaddr staging buffer.
func (a *GatedAPI) Accept(fd int) (int, fstack.IPv4Addr, uint16, hostos.Errno) {
	sa, err := a.stageCap(stageAddrOff, 8)
	if err != nil {
		return -1, fstack.IPv4Addr{}, 0, hostos.EFAULT
	}
	r, errno := a.G.accept.Call(a.App, hostos.Args{uint64(fd)}, sa)
	if errno != hostos.OK {
		return -1, fstack.IPv4Addr{}, 0, errno
	}
	var buf [8]byte
	if err := a.App.Load(a.App.Base()+stageAddrOff, buf[:]); err != nil {
		return -1, fstack.IPv4Addr{}, 0, hostos.EFAULT
	}
	ip := fstack.IPv4Addr{buf[0], buf[1], buf[2], buf[3]}
	port := uint16(buf[4]) | uint16(buf[5])<<8
	return int(r), ip, port, hostos.OK
}

// Connect starts an active open.
func (a *GatedAPI) Connect(fd int, ip fstack.IPv4Addr, port uint16) hostos.Errno {
	_, errno := a.G.connect.Call(a.App, hostos.Args{uint64(fd), u64FromIP4(ip), uint64(port)}, cheri.NullCap)
	return errno
}

// Write sends bytes: the application buffer is staged into the app
// window once (it is the app's own memory) and its capability crosses
// the gate — the measured ff_write path of Figs. 5 and 6.
func (a *GatedAPI) Write(fd int, src []byte) (int, hostos.Errno) {
	if len(src) == 0 || len(src) > StageWriteSize {
		return -1, hostos.EINVAL
	}
	if a.stagedPtr != &src[0] || a.stagedLen != len(src) {
		if err := a.App.Store(a.App.Base()+stageWriteOff, src); err != nil {
			return -1, hostos.EFAULT
		}
		a.stagedPtr, a.stagedLen = &src[0], len(src)
	}
	buf, err := a.stageCap(stageWriteOff, len(src))
	if err != nil {
		return -1, hostos.EFAULT
	}
	r, errno := a.G.write.Call(a.App, hostos.Args{uint64(fd), uint64(len(src))}, buf)
	return int(r), errno
}

// Read receives bytes through the read staging area.
func (a *GatedAPI) Read(fd int, dst []byte) (int, hostos.Errno) {
	n := min(len(dst), stageReadSize)
	if n == 0 {
		return 0, hostos.OK
	}
	buf, err := a.stageCap(stageReadOff, n)
	if err != nil {
		return -1, hostos.EFAULT
	}
	r, errno := a.G.read.Call(a.App, hostos.Args{uint64(fd), uint64(n)}, buf)
	if errno != hostos.OK {
		return int(r), errno
	}
	if r > 0 {
		if err := a.App.Load(a.App.Base()+stageReadOff, dst[:r]); err != nil {
			return -1, hostos.EFAULT
		}
	}
	return int(r), hostos.OK
}

// Close shuts a descriptor down.
func (a *GatedAPI) Close(fd int) hostos.Errno {
	_, errno := a.G.closeG.Call(a.App, hostos.Args{uint64(fd)}, cheri.NullCap)
	return errno
}

// EpollCreate makes an epoll descriptor.
func (a *GatedAPI) EpollCreate() int {
	r, _ := a.G.epCreate.Call(a.App, hostos.Args{}, cheri.NullCap)
	return int(r)
}

// EpollCtl manipulates an interest set.
func (a *GatedAPI) EpollCtl(epfd, op, fd int, events uint32) hostos.Errno {
	_, errno := a.G.epCtl.Call(a.App,
		hostos.Args{uint64(epfd), uint64(op), uint64(fd), uint64(events)}, cheri.NullCap)
	return errno
}

// EpollWait collects ready events through the event staging area.
func (a *GatedAPI) EpollWait(epfd int, evs []fstack.Event) (int, hostos.Errno) {
	n := min(len(evs), stageEventsMax)
	if n == 0 {
		return 0, hostos.OK
	}
	buf, err := a.stageCap(stageEventsOff, n*8)
	if err != nil {
		return -1, hostos.EFAULT
	}
	r, errno := a.G.epWait.Call(a.App, hostos.Args{uint64(epfd), uint64(n)}, buf)
	if errno != hostos.OK {
		return -1, errno
	}
	if r > 0 {
		raw := make([]byte, int(r)*8)
		if err := a.App.Load(a.App.Base()+stageEventsOff, raw); err != nil {
			return -1, hostos.EFAULT
		}
		for i := 0; i < int(r); i++ {
			evs[i] = fstack.Event{
				FD:     int(binary.LittleEndian.Uint32(raw[i*8:])),
				Events: binary.LittleEndian.Uint32(raw[i*8+4:]),
			}
		}
	}
	return int(r), hostos.OK
}
