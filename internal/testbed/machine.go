package testbed

import (
	"fmt"

	"repro/internal/cheri"
	"repro/internal/dpdk"
	"repro/internal/fstack"
	"repro/internal/hostos"
	"repro/internal/intravisor"
	"repro/internal/nic"
)

// Machine is one simulated computer: tagged memory + kernel + one NIC.
type Machine struct {
	Name string
	K    *hostos.Kernel
	Card *nic.Card
	IV   *intravisor.Intravisor // created lazily by NewCVM
	clk  hostos.Clock
}

// machineConfig is the resolved (defaults filled) machine description.
type machineConfig struct {
	Name        string
	Clk         hostos.Clock
	MemBytes    uint64
	Ports       int
	LineRateBps float64
	RxFifoBytes int
	BusLimited  bool
	CapDMA      bool
	MACLast     byte
	Arena       *nic.FrameArena
}

// newMachine boots a machine per the config.
func newMachine(cfg machineConfig) (*Machine, error) {
	mem := cfg.MemBytes
	if mem == 0 {
		mem = DefaultMachineMem
	}
	k, err := hostos.NewKernel(mem)
	if err != nil {
		return nil, err
	}
	lineRate := cfg.LineRateBps
	if lineRate <= 0 {
		lineRate = defaultLineRate
	}
	ncfg := nic.Config{
		BDFBase:     fmt.Sprintf("0000:03:%02x", cfg.MACLast),
		Ports:       cfg.Ports,
		LineRateBps: lineRate,
		RxFifoBytes: cfg.RxFifoBytes,
		MAC:         [6]byte{0x02, 0x82, 0x57, 0x60, 0x00, cfg.MACLast},
		Clk:         cfg.Clk,
		Mem:         k.Mem,
		CapDMA:      cfg.CapDMA,
		Arena:       cfg.Arena,
	}
	if cfg.BusLimited {
		ncfg.BusRateBps, ncfg.BusCostTX, ncfg.BusCostRX = nic.DefaultBusConfig()
	}
	card, err := nic.New(ncfg)
	if err != nil {
		return nil, err
	}
	if err := card.RegisterPCI(k.PCI); err != nil {
		return nil, err
	}
	// Boot-time kernel configuration: detach every port from the kernel
	// driver so user space (DPDK) can claim it.
	for i := 0; i < cfg.Ports; i++ {
		if errno := k.PCI.Unbind(card.Port(i).BDF()); errno != hostos.OK {
			return nil, fmt.Errorf("testbed: unbinding port %d: %v", i, errno)
		}
	}
	return &Machine{Name: cfg.Name, K: k, Card: card, clk: cfg.Clk}, nil
}

// NewCVM creates a default-sized cVM on this machine (boots the
// Intravisor on first use).
func (m *Machine) NewCVM(name string) (*intravisor.CVM, error) {
	return m.NewCVMSized(name, DefaultCVMBytes)
}

// NewCVMSized creates a cVM with a non-default window (sharded or
// window-scaled workloads need room for many connections' buffers).
func (m *Machine) NewCVMSized(name string, size uint64) (*intravisor.CVM, error) {
	if m.IV == nil {
		iv, err := intravisor.New(m.K)
		if err != nil {
			return nil, err
		}
		m.IV = iv
	}
	c, err := m.IV.CreateCVM(name, size)
	if err != nil {
		return nil, err
	}
	c.Start()
	return c, nil
}

// Env is one network environment — the DPDK segment, buffer pool,
// bound ports, stack and main loop of either a Baseline process or a
// cVM. A sharded environment (StackSpec.Shards > 0) carries a
// ShardedStack instead of a single Stack, and its loops live there.
type Env struct {
	Name string
	CVM  *intravisor.CVM // nil for Baseline processes
	Seg  *dpdk.MemSeg
	Pool *dpdk.Mempool
	Devs []*dpdk.EthDev
	// IFs are the stack's bound interfaces, in IfSpec order (empty for
	// sharded environments, whose single interface spans every shard).
	IFs  []*fstack.NetIF
	Stk  *fstack.Stack // nil when Sharded is set
	Loop *fstack.Loop  // nil when Sharded is set
	// Sharded is the multi-queue stack of a sharded environment.
	Sharded *fstack.ShardedStack
}

// CapMode reports whether the environment runs the CHERI port.
func (e *Env) CapMode() bool { return e.Seg.CapMode() }

// NowNS reads the clock the way this environment's code must: directly
// for a Baseline process, through the Intravisor trampoline for a cVM
// ("in cVMs we can't directly access the timers of the system", §IV).
func (e *Env) NowNS(k *hostos.Kernel) int64 {
	if e.CVM != nil {
		return e.CVM.NowNS()
	}
	s, ns, _ := k.Syscall(hostos.SysClockGettime, hostos.Args{hostos.ClockMonotonicRaw})
	return int64(s)*1e9 + int64(ns)
}

// Loops lists the environment's main loops (one, or one per shard).
func (e *Env) Loops() []*fstack.Loop {
	if e.Sharded != nil {
		return e.Sharded.Loops()
	}
	return []*fstack.Loop{e.Loop}
}

// baselineSeg allocates a plain kernel-memory segment for a process
// environment: accesses are raw, DMA is raw.
func (m *Machine) baselineSeg(name string, segBytes uint64) (*dpdk.MemSeg, error) {
	base, errno := m.K.Pages.Alloc(segBytes)
	if errno != hostos.OK {
		return nil, fmt.Errorf("testbed: allocating segment for %s: %v", name, errno)
	}
	return dpdk.NewMemSeg(m.K.Mem, base, segBytes, cheri.NullCap, false)
}

// cvmSeg derives a capability-checked segment in the upper part of a
// cVM's window (the lower part stays for application data).
func cvmSeg(m *Machine, cvm *intravisor.CVM, segBytes uint64) (*dpdk.MemSeg, error) {
	segBase := cvm.Base() + cvm.Size() - segBytes
	segCap, err := cvm.DDC().SetAddr(segBase).SetBounds(segBytes)
	if err != nil {
		return nil, err
	}
	return dpdk.NewMemSeg(m.K.Mem, segBase, segBytes, segCap, true)
}

// finishEnv probes the ports, builds the pool, stack and loop.
func (m *Machine) finishEnv(name, poolName string, cvm *intravisor.CVM, seg *dpdk.MemSeg, ifs []IfSpec, poolN, ringSize int) (*Env, error) {
	pool, err := dpdk.NewMempool(seg, poolName, poolN, dpdk.DefaultDataroom)
	if err != nil {
		return nil, err
	}
	stk := fstack.NewStack(seg, pool, m.clk)
	env := &Env{Name: name, CVM: cvm, Seg: seg, Pool: pool, Stk: stk}
	for _, ic := range ifs {
		dev, err := dpdk.Probe(m.K.PCI, m.Card.Port(ic.Port).BDF(), seg)
		if err != nil {
			return nil, err
		}
		if err := dev.Configure(uint32(ringSize), uint32(ringSize), pool); err != nil {
			return nil, err
		}
		if err := dev.Start(); err != nil {
			return nil, err
		}
		env.IFs = append(env.IFs, stk.AddNetIF(ifName(ic), dev, ifIP(ic), ifMask(ic)))
		env.Devs = append(env.Devs, dev)
	}
	env.Loop = &fstack.Loop{Stk: stk}
	return env, nil
}
