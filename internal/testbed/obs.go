package testbed

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/obs"
	"repro/internal/stats"
)

// Trace source-id plan: every layer tags events with a uint16 "who".
// Local NIC ports use their port index; peer-side identities are offset
// so both ends of a cable stay distinguishable in one trace.
const (
	peerPortSrc  = 64  // peer NIC ports: peerPortSrc + local port index
	peerStackSrc = 128 // peer stacks: peerStackSrc + local port index
)

// LinkCapture is one per-peer libpcap capture: both directions of the
// peer's cable, written at the receiving ends so dropped frames appear
// as gaps.
type LinkCapture struct {
	Peer string
	W    *obs.PcapWriter
	f    io.Closer
}

// wireObs attaches the spec'd instruments to an already-built bed.
// Called at the end of Build, only when spec.Obs.Enabled() — a zero
// ObsSpec leaves every hook pointer nil and the bed untouched.
func (b *Bed) wireObs(spec Spec) error {
	oSpec := spec.Obs
	o := &obs.Obs{}
	if oSpec.TraceEvents > 0 {
		o.Trace = obs.NewTrace(oSpec.TraceEvents)
	}
	if oSpec.SampleNS > 0 {
		o.Metrics = obs.NewMetrics(oSpec.SampleNS)
	}
	if oSpec.Latency {
		o.Datapath = &stats.Histogram{}
		o.RTT = &stats.Histogram{}
	}
	b.Obs = o
	now := b.Clk.Now

	for i := 0; i < spec.Machine.Ports; i++ {
		b.Local.Card.Port(i).SetObs(o.Trace, o.Datapath, uint16(i))
	}
	if b.Local.IV != nil {
		b.Local.IV.SetTrace(o.Trace, now)
	}
	devSrc := uint16(0)
	for i, e := range b.Envs {
		if e.Sharded != nil {
			for s := 0; s < e.Sharded.NumShards(); s++ {
				e.Sharded.Shard(s).SetObs(o.Trace, o.RTT, uint16(s))
			}
		} else if e.Stk != nil {
			e.Stk.SetObs(o.Trace, o.RTT, uint16(i))
		}
		for _, d := range e.Devs {
			d.SetObs(o.Trace, now, devSrc)
			devSrc++
		}
	}
	for _, p := range b.Peers {
		p.M.Card.Port(0).SetObs(o.Trace, o.Datapath, peerPortSrc+uint16(p.Port))
		if p.Env.Stk != nil {
			p.Env.Stk.SetObs(o.Trace, o.RTT, peerStackSrc+uint16(p.Port))
		}
		for _, d := range p.Env.Devs {
			d.SetObs(o.Trace, now, devSrc)
			devSrc++
		}
		if p.Link != nil {
			// Each direction gets its own source id: base + 0 (to peer),
			// base + 1 (to local).
			p.Link.SetTrace(o.Trace, uint16(p.Port)*2)
		}
	}
	if o.Metrics != nil {
		b.registerGauges(o.Metrics, spec)
	}
	if oSpec.PcapDir != "" {
		return b.openPcaps(oSpec)
	}
	return nil
}

// registerGauges builds the bed's metrics registry: registration order
// is deterministic (envs in spec order, then peers) so the exported CSV
// column order is stable run to run. Fault-plane gauges (compartment
// state, link carrier) only exist when the spec declares faults, so
// fault-free timeseries keep their exact column set.
func (b *Bed) registerGauges(m *obs.Metrics, spec Spec) {
	faults := spec.Faults.Enabled()
	sumCwndPipe := func(e *Env) func() (int, int) {
		if ss := e.Sharded; ss != nil {
			return func() (int, int) {
				var cwnd, pipe int
				for s := 0; s < ss.NumShards(); s++ {
					c, p := ss.Shard(s).SumCwndPipe()
					cwnd += c
					pipe += p
				}
				return cwnd, pipe
			}
		}
		if stk := e.Stk; stk != nil {
			return func() (int, int) { return stk.SumCwndPipe() }
		}
		return nil
	}
	connDepth := func(e *Env) func() (int, int) {
		if ss := e.Sharded; ss != nil {
			return func() (int, int) { return ss.ConnCount(), ss.AcceptQueueDepth() }
		}
		if stk := e.Stk; stk != nil {
			return func() (int, int) { return stk.ConnCount(), stk.AcceptQueueDepth() }
		}
		return nil
	}
	for _, e := range b.Envs {
		if get := sumCwndPipe(e); get != nil {
			m.Gauge(e.Name+".cwnd_bytes", func(int64) float64 { c, _ := get(); return float64(c) })
			m.Gauge(e.Name+".pipe_bytes", func(int64) float64 { _, p := get(); return float64(p) })
		}
		if get := connDepth(e); get != nil {
			m.Gauge(e.Name+".conns", func(int64) float64 { c, _ := get(); return float64(c) })
			m.Gauge(e.Name+".accept_queue", func(int64) float64 { _, d := get(); return float64(d) })
		}
		for j, d := range e.Devs {
			d := d
			m.Gauge(fmt.Sprintf("%s.dev%d.rx_mbps", e.Name, j), rateMbps(func() uint64 { return d.Stats().IBytes }))
			m.Gauge(fmt.Sprintf("%s.dev%d.tx_mbps", e.Name, j), rateMbps(func() uint64 { return d.Stats().OBytes }))
		}
		if faults {
			stacks := envStacks(e)
			m.Gauge(e.Name+".up", func(int64) float64 {
				for _, stk := range stacks {
					if stk.Down() {
						return 0
					}
				}
				return 1
			})
		}
	}
	for i, p := range b.Peers {
		ln := b.Links[i]
		if ln == nil {
			continue
		}
		name := p.Env.Name
		for dir, way := range [...]string{"to_peer", "to_local"} {
			dir := dir
			m.Gauge(fmt.Sprintf("link.%s.%s.held_frames", name, way), func(now int64) float64 {
				f, _ := ln.Depth(dir, now)
				return float64(f)
			})
			m.Gauge(fmt.Sprintf("link.%s.%s.backlog_us", name, way), func(now int64) float64 {
				_, ns := ln.Depth(dir, now)
				return float64(ns) / 1e3
			})
			if faults {
				m.Gauge(fmt.Sprintf("link.%s.%s.carrier", name, way), func(now int64) float64 {
					if ln.Carrier(dir, now) {
						return 1
					}
					return 0
				})
			}
		}
	}
	if iv := b.Local.IV; iv != nil {
		m.Gauge("gate_crossings", func(int64) float64 { return float64(iv.Crossings.Load()) })
	}
}

// rateMbps turns a cumulative byte counter into an interval-throughput
// gauge: each sample reports the megabits per second moved since the
// previous sample.
func rateMbps(get func() uint64) func(now int64) float64 {
	var lastBytes uint64
	var lastNow int64
	started := false
	return func(now int64) float64 {
		b := get()
		var mbps float64
		if started && now > lastNow {
			mbps = float64(b-lastBytes) * 8e3 / float64(now-lastNow)
		}
		lastBytes, lastNow, started = b, now, true
		return mbps
	}
}

// openPcaps creates one capture file per selected peer and taps both
// ends of that peer's cable into it. The tap observes frames at
// delivery into the receiving port — exactly what survived the link —
// so netem drops show up as sequence gaps in Wireshark.
func (b *Bed) openPcaps(spec ObsSpec) error {
	if err := os.MkdirAll(spec.PcapDir, 0o755); err != nil {
		return fmt.Errorf("testbed: pcap dir: %w", err)
	}
	selected := func(name string) bool {
		if len(spec.PcapPeers) == 0 {
			return true
		}
		for _, want := range spec.PcapPeers {
			if want == name {
				return true
			}
		}
		return false
	}
	for _, p := range b.Peers {
		name := p.Env.Name
		if !selected(name) {
			continue
		}
		f, err := os.Create(filepath.Join(spec.PcapDir, name+".pcap"))
		if err != nil {
			return err
		}
		w, err := obs.NewPcapWriter(f)
		if err != nil {
			f.Close()
			return err
		}
		tap := func(tsNS int64, data []byte) { _ = w.WritePacket(tsNS, data) }
		b.Local.Card.Port(p.Port).SetRxTap(tap) // peer -> local direction
		p.M.Card.Port(0).SetRxTap(tap)          // local -> peer direction
		b.Pcaps = append(b.Pcaps, &LinkCapture{Peer: name, W: w, f: f})
	}
	return nil
}

// ObsTick runs the metrics sampler at the given virtual instant. The
// event-driven driver calls it every iteration; with observability off
// (or metrics off) it is a nil-check and a return.
func (b *Bed) ObsTick(now int64) { b.Obs.Tick(now) }

// CloseObs detaches the pcap taps and closes the capture files; the
// Pcaps entries stay readable (frame counts, sticky errors) afterward.
// Safe to call on a bed without captures, and idempotent.
func (b *Bed) CloseObs() error {
	var first error
	for _, pc := range b.Pcaps {
		if pc.f == nil {
			continue // already closed
		}
		if err := pc.W.Err(); err != nil && first == nil {
			first = err
		}
		if err := pc.f.Close(); err != nil && first == nil {
			first = err
		}
		pc.f = nil
	}
	for _, p := range b.Peers {
		b.Local.Card.Port(p.Port).SetRxTap(nil)
		p.M.Card.Port(0).SetRxTap(nil)
	}
	return first
}
