package testbed

import (
	"repro/internal/dpdk"
	"repro/internal/fstack"
)

// ShardStepper runs a bed's shard loops on several host goroutines
// between consecutive virtual instants, producing the bit-identical
// event order of the sequential driver. Virtual time is frozen while
// the loops run, so the only ordering that matters is the order shared
// device state is touched in — and the stepper makes that order
// explicit with a three-phase schedule per instant:
//
//	A. (sequential) one device step: leftover TX descriptors drain onto
//	   the line in queue-index order, the conduit pumps due frames, and
//	   the RX FIFOs fill the descriptor rings.
//	B. (parallel) every shard loop runs once against the no-step burst
//	   variants: harvest completed RX descriptors, run the stack,
//	   program TX descriptors. Shards touch only their own queue pair's
//	   software state; the structures they share (mempool, ARP cache,
//	   port registers, tag memory) carry their own locks.
//	C. (sequential) one device step: the TX frames phase B programmed
//	   drain in queue-index order — the same order sequential loops
//	   submit in, and serializer admission within a frozen instant is
//	   monotone, so the line books the identical schedule.
//
// Peer loops (single-stack, self-stepping) then run sequentially, as
// they always have. Everything a transmitted frame could influence is
// strictly in the future (line booking plus propagation delay), so no
// shard can observe another's same-instant output in either schedule.
//
// One piece of sequential behavior cannot wait for a phase boundary:
// descriptor-ring backpressure. The sequential driver steps the device
// inside every burst call, so a stack saturating its TX ring sees the
// ring drain continuously and only stalls once the ring AND the line's
// admission window are both full. Phase B's no-step bursts would stall
// at the bare ring size instead — earlier than sequential — and the
// different stall point changes segmentation and then everything
// downstream. So a shard whose TX ring fills mid-instant blocks in a
// stall handler, and the stepper services it by draining TX queues
// 0..q (TX only — no conduit pump, no RX fill) once every shard below
// q has finished the instant. At that moment queues below q hold their
// final frames and queue q holds the stalled shard's, so the drain
// books the line in exactly the sequential order; if the stalled queue
// still cannot advance, the handler reports failure and the shard
// surfaces the shortfall precisely where the sequential stack would.
// A stalled shard waits only on lower-numbered shards and every worker
// steps its loops in ascending order, so the wait graph is acyclic.
type ShardStepper struct {
	sharded    *fstack.ShardedStack
	dev        *dpdk.EthDev
	loops      []*fstack.Loop // shard loops, phase B
	peers      []*fstack.Loop // remaining loops, stepped sequentially after
	kicks      []chan struct{}
	loopDone   chan int    // workers report each finished loop index
	stalls     chan int    // shards report a full TX ring mid-instant
	stallReply []chan bool // per-shard drain verdict, unblocking the shard
	quit       chan struct{}

	// Coordinator-only scratch, reused across instants.
	done []bool // per-shard: finished the current instant
	held []int  // stalled shards waiting on lower shards to finish
}

// NewShardStepper returns a stepper over the bed's shard loops using up
// to `workers` goroutines, or nil when the bed is not eligible for
// parallel shard stepping. Eligibility is conservative — anything that
// would let one shard observe another's same-instant work falls back to
// the sequential driver:
//
//   - a sharded compartment with at least two shards, and no other
//     local compartments (their loops interleave with the shards');
//   - observability off (the trace ring orders events globally);
//   - an ideal PCI bus (a fair-share arbiter makes polling order part
//     of the machine state);
//   - no OnLoop callbacks on shard loops (they run user code the
//     schedule cannot see);
//   - every bound device offering the no-step burst surface, and the
//     TX-only drain the ring-full stall handler needs.
//
// The caller owns the returned stepper and must Close it.
func NewShardStepper(b *Bed, workers int) *ShardStepper {
	if workers <= 1 || b.Sharded == nil || b.Sharded.NumShards() < 2 {
		return nil
	}
	if len(b.Envs) != 1 || b.Obs != nil || b.Dev == nil {
		return nil
	}
	if b.Local.Card.BusLimited() || !b.Sharded.SupportsDeferredSteps() || !b.Dev.SupportsTxDrain() {
		return nil
	}
	shardLoops := b.Sharded.Loops()
	for _, l := range shardLoops {
		if l.OnLoop != nil {
			return nil
		}
	}
	all := b.Loops()
	n := len(shardLoops)
	ps := &ShardStepper{
		sharded:    b.Sharded,
		dev:        b.Dev,
		loops:      shardLoops,
		peers:      all[n:],
		loopDone:   make(chan int, n),
		stalls:     make(chan int, n),
		stallReply: make([]chan bool, n),
		quit:       make(chan struct{}),
		done:       make([]bool, n),
	}
	for i := range ps.stallReply {
		ps.stallReply[i] = make(chan bool)
	}
	// The handler blocks the stalled shard's worker until the
	// coordinator has drained (or refused to advance) its queue. It is
	// only reachable while deferred stepping is on, i.e. while RunOnce
	// is inside its coordination loop.
	b.Sharded.SetTxStallHandler(func(q int) bool {
		ps.stalls <- q
		return <-ps.stallReply[q]
	})
	if workers > n {
		workers = n
	}
	// Persistent workers, one kick channel each: an instant's fork/join
	// is two channel operations per worker instead of a goroutine spawn,
	// and worker w always steps the same loops (w, w+n, ...), keeping
	// per-shard cache state warm.
	ps.kicks = make([]chan struct{}, workers)
	for w := range ps.kicks {
		ps.kicks[w] = make(chan struct{})
		go ps.worker(w)
	}
	return ps
}

// worker steps loops w, w+n, w+2n, ... on every kick, reporting each
// completion. Ascending order matters: a stalled shard's drain waits on
// every lower shard, so a worker visiting its loops out of order could
// close a cycle.
func (ps *ShardStepper) worker(w int) {
	for {
		select {
		case <-ps.quit:
			return
		case <-ps.kicks[w]:
			for i := w; i < len(ps.loops); i += len(ps.kicks) {
				ps.loops[i].RunOnce()
				ps.loopDone <- i
			}
		}
	}
}

// RunOnce advances every loop of the bed one iteration at the current
// virtual instant: the three-phase shard schedule, then the peer loops.
// It is the parallel drop-in for the sequential driver's "step every
// loop once" inner body.
//
// Deferred device stepping is scoped to phase B alone. Anything that
// drives the sharded API outside the fork/join — the scenario app
// steppers that run after the loops, an iperf client writing from the
// driver goroutine — must step the device synchronously, exactly as
// the sequential driver does, or its frames would wait for the next
// instant's phase A and book the line one tick late. The toggles
// happen strictly before the kick sends and after the join, so the
// workers always observe deferSteps = true.
func (ps *ShardStepper) RunOnce() {
	ps.sharded.StepDevices() // phase A
	ps.sharded.SetDeferDeviceSteps(true)
	for i := range ps.done {
		ps.done[i] = false
	}
	for _, k := range ps.kicks {
		k <- struct{}{}
	}
	// Phase B coordination: collect per-loop completions and service TX
	// ring-full stalls. A held stall becomes serviceable once every
	// lower shard is done; its worker stays blocked until then, so it
	// cannot report completion and the loop cannot exit with stalls
	// pending.
	for remaining := len(ps.loops); remaining > 0; {
		select {
		case i := <-ps.loopDone:
			ps.done[i] = true
			remaining--
		case q := <-ps.stalls:
			ps.held = append(ps.held, q)
		}
		ps.serviceStalls()
	}
	ps.sharded.SetDeferDeviceSteps(false)
	ps.sharded.StepDevices() // phase C
	for _, l := range ps.peers {
		l.RunOnce()
	}
}

// serviceStalls drains every held stall whose lower shards have all
// finished the instant. At most one stall is serviceable at a time —
// two stalled shards q1 < q2 can never both qualify, since q2 would
// need q1 done and a stalled shard is not done — so the drain order,
// and with it the line-booking order, is deterministic.
func (ps *ShardStepper) serviceStalls() {
	for {
		serviced := false
		for i, q := range ps.held {
			ready := true
			for s := 0; s < q; s++ {
				if !ps.done[s] {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			ps.held = append(ps.held[:i], ps.held[i+1:]...)
			ps.stallReply[q] <- ps.dev.DrainTXThrough(q)
			serviced = true
			break
		}
		if !serviced {
			return
		}
	}
}

// Close stops the workers and unhooks the stall handler.
func (ps *ShardStepper) Close() {
	ps.sharded.SetTxStallHandler(nil)
	close(ps.quit)
}
