package testbed

import (
	"fmt"

	"repro/internal/fstack"
	"repro/internal/hostos"
	"repro/internal/netem"
)

// Default sizing for the simulated machines. Every spec field that
// admits a zero value falls back to one of these, which reproduce the
// paper's testbed.
const (
	// DefaultMachineMem is a machine's tagged memory.
	DefaultMachineMem = 64 << 20
	// DefaultCVMBytes is a cVM's window.
	DefaultCVMBytes = 12 << 20
	// DefaultSegBytes is a DPDK segment inside a process/cVM.
	DefaultSegBytes = 8 << 20
	// DefaultPoolBufs is the mbufs per packet pool.
	DefaultPoolBufs = 2048
	// DefaultRingSize is the RX/TX descriptor count per queue.
	DefaultRingSize = 512

	// Big link partners (fast ports, WAN links) carry many flows or
	// multi-MiB socket buffers; their environment is sized up so the
	// peer is never the bottleneck.
	bigPeerSegBytes  = 24 << 20
	bigPeerPoolBufs  = 3072
	defaultPeerMAC   = 0x80
	defaultLocalMAC  = 0x01
	defaultLineRate  = 1e9
	defaultPeerPorts = 1
)

// Spec describes a complete experiment topology. Build wires it.
type Spec struct {
	// Clk drives every machine, device and stack in the bed.
	Clk hostos.Clock
	// Machine is the local box under test.
	Machine MachineSpec
	// Compartments are the local network environments, in order. Port
	// ownership, addressing and gate policy are per compartment.
	Compartments []CompartmentSpec
	// Peers are the remote link partners, one per wired local port.
	Peers []PeerSpec
	// Obs enables the virtual-time observability layer. The zero value
	// keeps observability completely off: no hooks fire, no memory is
	// allocated, and the bed's behavior is bit-identical to a bed built
	// without it.
	Obs ObsSpec
	// Faults declares the deterministic fault schedule and the
	// supervisor's restart policy. The zero value keeps the fault plane
	// off with the same bit-identity guarantee as Obs.
	Faults FaultSpec
}

// ObsSpec selects the observability instruments wired into a bed. Each
// field independently enables one instrument; the zero value disables
// everything at zero cost.
type ObsSpec struct {
	// TraceEvents, when positive, attaches a flight recorder (a ring
	// keeping the most recent TraceEvents events) to every layer:
	// netem drops/enqueues, NIC and driver bursts, TCP state changes,
	// retransmissions and cwnd moves, and gate crossings.
	TraceEvents int
	// SampleNS, when positive, samples the bed's gauges (per-env cwnd
	// and pipe, per-device throughput, netem queue depths, gate
	// crossings) every SampleNS virtual nanoseconds into a timeseries.
	SampleNS int64
	// Latency attaches log-bucketed histograms for per-frame datapath
	// latency (wire arrival to DMA completion) and TCP RTT samples.
	Latency bool
	// PcapDir, when non-empty, writes one libpcap capture per selected
	// peer link into this directory (created if missing). The tap sits
	// at the receiving end of each cable, so impairment drops appear
	// as gaps in the capture.
	PcapDir string
	// PcapPeers selects which peers are captured by name; empty means
	// every peer (when PcapDir is set).
	PcapPeers []string
}

// Enabled reports whether any instrument is on.
func (o ObsSpec) Enabled() bool {
	return o.TraceEvents > 0 || o.SampleNS > 0 || o.Latency || o.PcapDir != ""
}

// MachineSpec parameterizes the local machine: its NIC, bus model and
// capability regime.
type MachineSpec struct {
	Name string
	// MemBytes is the machine's tagged memory (0 = 64 MiB).
	MemBytes uint64
	// Ports on the machine's NIC.
	Ports int
	// LineRateBps overrides the per-port line rate; 0 means the paper's
	// 1 GbE.
	LineRateBps float64
	// RxFifoBytes overrides the per-queue RX packet buffer; 0 keeps the
	// 82576's 64 KiB.
	RxFifoBytes int
	// BusLimited installs the calibrated 82576 shared-bus model.
	BusLimited bool
	// CapDMA bounds device DMA with capabilities (CHERI scenarios).
	CapDMA bool
	// MACLast seeds the card's MAC addresses (0 = 0x01).
	MACLast byte
}

// StackSpec tunes one environment's network stack.
type StackSpec struct {
	// Shards, when positive, runs a ShardedStack over that many NIC
	// RX/TX queue pairs (1 is the single-queue layout over the same
	// multi-queue hardware). Zero keeps the plain single stack of the
	// paper's scenarios.
	Shards int
	// RingSize overrides the per-queue descriptor count (0 = 512).
	RingSize int
	// CPUBps, when positive, charges every frame byte a shard moves
	// against a per-shard core budget of this many bits per second —
	// the multi-core CPU model. It requires a sharded stack and is
	// rejected on peers (ideal cores). CPUWindowNS bounds how far
	// ahead a core may be booked (0 = three full-size frame times at
	// CPUBps).
	CPUBps      float64
	CPUWindowNS int64
	// Tuning, when non-nil, applies modern TCP knobs (SACK, window
	// scaling, buffer sizes, congestion-control selection); nil keeps
	// the paper's stack. An unknown Congestion name is a spec error.
	Tuning *fstack.TCPTuning
	// RTOMinNS, when positive, raises the retransmission-timer floor.
	RTOMinNS int64
}

// IfSpec binds one NIC port to an interface of a compartment's stack.
// The zero address takes the testbed addressing plan: port i is subnet
// 10.0.i.0/24 with .1 local and .2 remote.
type IfSpec struct {
	Port int
	// Name defaults to eth<Port>.
	Name string
	// IP and Mask default to LocalIP(Port) and Mask24.
	IP   fstack.IPv4Addr
	Mask fstack.IPv4Addr
}

// CompartmentSpec describes one local network environment: a Baseline
// process or a capability cVM, its sizing, the ports it owns, its
// stack tuning, and its gate policy.
type CompartmentSpec struct {
	Name string
	// CVM runs the environment inside a capability cVM; false is a
	// plain process over raw kernel memory.
	CVM bool
	// CVMName overrides the cVM's name (defaults to Name).
	CVMName string
	// CVMBytes sizes the cVM window (0 = 12 MiB).
	CVMBytes uint64
	// SegBytes sizes the DPDK segment (0 = 8 MiB).
	SegBytes uint64
	// PoolBufs sizes the packet pool (0 = 2048); PoolName overrides the
	// pool's name (defaults to Name+"-pkt").
	PoolBufs int
	PoolName string
	// Ifs are the NIC ports this compartment owns.
	Ifs []IfSpec
	// Stack tunes the compartment's stack (sharding, TCP knobs).
	Stack StackSpec
	// APIGate exports the stack's API through sealed cross-compartment
	// gates, and AppCVMs names the application cVMs created to call
	// through them (Scenario 2's layout). Requires CVM.
	APIGate bool
	AppCVMs []string
	// DeviceGate splits the DPDK driver into its own cVM (named
	// DevCVMName, default Name+"-dpdk"): the stack reaches the NIC only
	// through sealed per-burst gates (Scenario 3's layout). Requires
	// CVM.
	DeviceGate bool
	DevCVMName string
}

// LinkSpec describes an impaired link in place of the direct cable,
// with independent per-direction netem configurations — asymmetric
// loss and slow-ACK-channel experiments are two fields, not new
// topology code.
type LinkSpec struct {
	// ToPeer impairs frames leaving the local box toward the peer.
	ToPeer netem.Config
	// ToLocal impairs the reverse path.
	ToLocal netem.Config
}

// SymmetricLink applies one netem config to both directions.
func SymmetricLink(cfg netem.Config) *LinkSpec {
	return &LinkSpec{ToPeer: cfg, ToLocal: cfg}
}

// PeerSpec describes one remote link partner: its own machine with an
// ideal NIC and a Baseline environment, wired (directly or through a
// netem link) to one local port.
type PeerSpec struct {
	// Port is the local NIC port this peer faces.
	Port int
	// Name defaults to peer<Port>.
	Name string
	// MACLast seeds the peer card's MACs (0 = 0x80+Port).
	MACLast byte
	// LineRateBps is the peer port's serialization rate; 0 means the
	// paper's 1 GbE. Both ends of a cable must serialize at the same
	// rate, so this should match the local port for direct wires.
	LineRateBps float64
	// Big forces the large environment sizing. It is implied by a fast
	// line (> 1 GbE) or an impaired link, whose window-scaled flows
	// buffer multi-MiB per connection.
	Big bool
	// SegBytes / PoolBufs override the environment sizing explicitly.
	SegBytes uint64
	PoolBufs int
	// Link, when non-nil, interposes a netem impairment pipeline in
	// place of the direct cable.
	Link *LinkSpec
	// Stack tunes the peer's stack (TCP knobs only; peers never shard).
	Stack StackSpec
}

// validate checks a spec's internal consistency and its address plan,
// returning an error instead of silently overlapping resources.
func (s Spec) validate() error {
	if s.Clk == nil {
		return fmt.Errorf("testbed: spec needs a clock")
	}
	if s.Machine.Ports <= 0 {
		return fmt.Errorf("testbed: machine needs at least one NIC port")
	}
	if len(s.Compartments) == 0 {
		return fmt.Errorf("testbed: spec has no compartments")
	}
	plan := newAddrPlan()
	localMAC := s.Machine.MACLast
	if localMAC == 0 {
		localMAC = defaultLocalMAC
	}
	if err := plan.claimMAC(localMAC, "machine "+s.Machine.Name); err != nil {
		return err
	}
	names := map[string]string{}
	claimName := func(name, what string) error {
		if prev, ok := names[name]; ok {
			return fmt.Errorf("testbed: name %q claimed by both %s and %s", name, prev, what)
		}
		names[name] = what
		return nil
	}
	for i, cs := range s.Compartments {
		what := fmt.Sprintf("compartment %s", cs.Name)
		if cs.Name == "" {
			return fmt.Errorf("testbed: compartment %d has no name", i)
		}
		if err := claimName(cs.Name, what); err != nil {
			return err
		}
		if (cs.APIGate || cs.DeviceGate) && !cs.CVM {
			return fmt.Errorf("testbed: %s: gates need a cVM-hosted stack", what)
		}
		if len(cs.AppCVMs) > 0 && !cs.APIGate {
			return fmt.Errorf("testbed: %s: application cVMs need APIGate", what)
		}
		if cs.Stack.Shards > 0 && len(cs.Ifs) != 1 {
			return fmt.Errorf("testbed: %s: a sharded stack drives exactly one port", what)
		}
		if cs.DeviceGate && len(cs.Ifs) != 1 {
			return fmt.Errorf("testbed: %s: a device-gated stack drives exactly one port", what)
		}
		if cs.Stack.Shards > 0 && (cs.APIGate || cs.DeviceGate) {
			return fmt.Errorf("testbed: %s: sharding does not compose with gates yet", what)
		}
		if cs.Stack.CPUBps > 0 && cs.Stack.Shards == 0 {
			return fmt.Errorf("testbed: %s: a CPU budget needs a sharded stack (set Shards >= 1)", what)
		}
		if err := validStackTuning(cs.Stack, what); err != nil {
			return err
		}
		if cs.CVMName != "" && cs.CVMName != cs.Name {
			if err := claimName(cs.CVMName, fmt.Sprintf("cVM of %s", cs.Name)); err != nil {
				return err
			}
		}
		if cs.DeviceGate {
			devName := cs.DevCVMName
			if devName == "" {
				devName = cs.Name + "-dpdk"
			}
			if err := claimName(devName, fmt.Sprintf("driver cVM of %s", cs.Name)); err != nil {
				return err
			}
		}
		for _, app := range cs.AppCVMs {
			if err := claimName(app, fmt.Sprintf("app cVM of %s", cs.Name)); err != nil {
				return err
			}
		}
		for _, ic := range cs.Ifs {
			if ic.Port < 0 || ic.Port >= s.Machine.Ports {
				return fmt.Errorf("testbed: %s: port %d out of range [0,%d)", what, ic.Port, s.Machine.Ports)
			}
			if err := plan.claimLocalPort(ic.Port, what); err != nil {
				return err
			}
			if err := plan.claimIP(ifIP(ic), what); err != nil {
				return err
			}
		}
	}
	for _, ps := range s.Peers {
		what := fmt.Sprintf("peer %s", peerName(ps))
		if ps.Port < 0 || ps.Port >= s.Machine.Ports {
			return fmt.Errorf("testbed: %s: port %d out of range [0,%d)", what, ps.Port, s.Machine.Ports)
		}
		if ps.Stack.Shards > 0 {
			return fmt.Errorf("testbed: %s: peers never shard", what)
		}
		if ps.Stack.CPUBps > 0 || ps.Stack.CPUWindowNS > 0 {
			return fmt.Errorf("testbed: %s: peers stand in for the other end of the cable and have ideal cores", what)
		}
		if err := validStackTuning(ps.Stack, what); err != nil {
			return err
		}
		if err := claimName(peerName(ps), what); err != nil {
			return err
		}
		if err := plan.claimPeerPort(ps.Port, what); err != nil {
			return err
		}
		if err := plan.claimIP(PeerIP(ps.Port), what); err != nil {
			return err
		}
		if err := plan.claimMAC(peerMAC(ps), what); err != nil {
			return err
		}
	}
	return s.validateFaults()
}

// validStackTuning rejects TCP tunings the stack would refuse at
// connection time — validation belongs here, where the spec's author
// gets the error, not inside a failing connect mid-experiment.
func validStackTuning(ss StackSpec, what string) error {
	if ss.Tuning != nil && !fstack.ValidCongestion(ss.Tuning.Congestion) {
		return fmt.Errorf("testbed: %s: unknown congestion-control algorithm %q (have %v)",
			what, ss.Tuning.Congestion, fstack.CongestionAlgos())
	}
	return nil
}

// ifIP resolves an interface spec's address against the plan.
func ifIP(ic IfSpec) fstack.IPv4Addr {
	if ic.IP != (fstack.IPv4Addr{}) {
		return ic.IP
	}
	return LocalIP(ic.Port)
}

// ifMask resolves an interface spec's netmask.
func ifMask(ic IfSpec) fstack.IPv4Addr {
	if ic.Mask != (fstack.IPv4Addr{}) {
		return ic.Mask
	}
	return Mask24
}

// ifName resolves an interface spec's name.
func ifName(ic IfSpec) string {
	if ic.Name != "" {
		return ic.Name
	}
	return fmt.Sprintf("eth%d", ic.Port)
}

// peerName resolves a peer spec's name.
func peerName(ps PeerSpec) string {
	if ps.Name != "" {
		return ps.Name
	}
	return fmt.Sprintf("peer%d", ps.Port)
}

// peerMAC resolves a peer spec's MAC seed.
func peerMAC(ps PeerSpec) byte {
	if ps.MACLast != 0 {
		return ps.MACLast
	}
	return defaultPeerMAC + byte(ps.Port)
}
