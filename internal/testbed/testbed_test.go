package testbed

import (
	"strings"
	"testing"

	"repro/internal/fstack"
	"repro/internal/sim"
)

// minimalSpec is a valid one-process, one-peer topology.
func minimalSpec() Spec {
	return Spec{
		Clk:     sim.NewVClock(),
		Machine: MachineSpec{Name: "morello", Ports: 2},
		Compartments: []CompartmentSpec{
			{Name: "proc", Ifs: []IfSpec{{Port: 0}}},
		},
		Peers: []PeerSpec{{Port: 0}},
	}
}

func wantBuildError(t *testing.T, spec Spec, fragment string) {
	t.Helper()
	_, err := Build(spec)
	if err == nil {
		t.Fatalf("spec built; want error containing %q", fragment)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Fatalf("error %q does not mention %q", err, fragment)
	}
}

func TestBuildMinimalSpec(t *testing.T) {
	bed, err := Build(minimalSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(bed.Envs) != 1 || len(bed.Peers) != 1 || len(bed.Links) != 1 {
		t.Fatalf("bed shape: %d envs, %d peers, %d links", len(bed.Envs), len(bed.Peers), len(bed.Links))
	}
	if bed.Links[0] != nil {
		t.Fatal("plain wire reported a netem link")
	}
	if got := len(bed.Loops()); got != 2 {
		t.Fatalf("loops: %d, want 2", got)
	}
	if bed.Envs[0].CapMode() {
		t.Fatal("baseline process reports capability mode")
	}
}

func TestSpecValidationErrors(t *testing.T) {
	s := minimalSpec()
	s.Clk = nil
	wantBuildError(t, s, "clock")

	s = minimalSpec()
	s.Machine.Ports = 0
	wantBuildError(t, s, "port")

	s = minimalSpec()
	s.Compartments = nil
	wantBuildError(t, s, "no compartments")

	s = minimalSpec()
	s.Compartments[0].Ifs[0].Port = 7
	wantBuildError(t, s, "out of range")

	s = minimalSpec()
	s.Compartments[0].APIGate = true // gates need a cVM
	wantBuildError(t, s, "cVM")

	s = minimalSpec()
	s.Compartments[0].AppCVMs = []string{"app"}
	wantBuildError(t, s, "APIGate")

	s = minimalSpec()
	s.Compartments[0].Stack.Shards = 2
	s.Compartments[0].Ifs = append(s.Compartments[0].Ifs, IfSpec{Port: 1})
	wantBuildError(t, s, "exactly one port")

	s = minimalSpec()
	s.Peers[0].Stack.Shards = 2
	wantBuildError(t, s, "peers never shard")

	s = minimalSpec()
	s.Compartments[0].CVM = true
	s.Compartments[0].DeviceGate = true
	s.Compartments[0].Ifs = nil
	wantBuildError(t, s, "exactly one port")

	// An unknown congestion-control name is rejected at spec time, on
	// compartments and peers alike, instead of failing the first
	// connect mid-experiment.
	s = minimalSpec()
	s.Compartments[0].Stack.Tuning = &fstack.TCPTuning{Congestion: "vegas"}
	wantBuildError(t, s, "congestion")

	s = minimalSpec()
	s.Peers[0].Stack.Tuning = &fstack.TCPTuning{Congestion: "vegas"}
	wantBuildError(t, s, "congestion")
}

// TestAddressCollisionsAreErrors pins the satellite: the centralized
// plan rejects overlapping IPs, MACs, port owners and duplicate names
// instead of silently wiring them.
func TestAddressCollisionsAreErrors(t *testing.T) {
	// Two compartments owning the same NIC port.
	s := minimalSpec()
	s.Compartments = append(s.Compartments, CompartmentSpec{Name: "proc2", Ifs: []IfSpec{{Port: 0}}})
	wantBuildError(t, s, "local port 0")

	// Explicit IP colliding with the plan's peer address.
	s = minimalSpec()
	s.Compartments[0].Ifs[0].IP = PeerIP(0)
	wantBuildError(t, s, "IP")

	// Two compartments with explicit IPs colliding across subnets.
	s = minimalSpec()
	s.Compartments = append(s.Compartments, CompartmentSpec{
		Name: "proc2",
		Ifs:  []IfSpec{{Port: 1, IP: LocalIP(0)}},
	})
	wantBuildError(t, s, "IP")

	// Two peers on one cable.
	s = minimalSpec()
	s.Peers = append(s.Peers, PeerSpec{Port: 0, Name: "peer0b", MACLast: 0x90})
	wantBuildError(t, s, "share the cable")

	// MAC collision between a peer and the local card.
	s = minimalSpec()
	s.Peers[0].MACLast = defaultLocalMAC
	wantBuildError(t, s, "MAC")

	// Duplicate compartment/app names.
	s = minimalSpec()
	s.Compartments = append(s.Compartments, CompartmentSpec{Name: "proc", Ifs: []IfSpec{{Port: 1}}})
	wantBuildError(t, s, "name")

	// cVM names collide even when the compartment names differ.
	s = minimalSpec()
	s.Compartments[0].CVM = true
	s.Compartments[0].CVMName = "cvm1"
	s.Compartments = append(s.Compartments, CompartmentSpec{
		Name: "other", CVM: true, CVMName: "cvm1", Ifs: []IfSpec{{Port: 1}},
	})
	wantBuildError(t, s, "cvm1")
}

// TestSpecDefaultsResolve pins the fallback chain: zero-valued fields
// take the documented defaults, explicit fields win.
func TestSpecDefaultsResolve(t *testing.T) {
	s := minimalSpec()
	s.Compartments[0].Ifs[0] = IfSpec{Port: 0} // all defaults
	bed, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	env := bed.Envs[0]
	if env.Stk == nil || env.Loop == nil || env.Sharded != nil {
		t.Fatal("plain compartment shape wrong")
	}
	// The default plan addressed the interface.
	if got := env.IFs[0].IP; got != LocalIP(0) {
		t.Fatalf("interface address %v, want %v", got, LocalIP(0))
	}
	if env.IFs[0].Name != "eth0" {
		t.Fatalf("interface name %q, want eth0", env.IFs[0].Name)
	}
	// Peer took the plan's .2 and the default MAC scheme.
	if bed.Peers[0].Env.IFs[0].IP != PeerIP(0) {
		t.Fatal("peer address off plan")
	}
	if mac := bed.Peers[0].M.Card.Port(0).MAC(); mac[5] != defaultPeerMAC {
		t.Fatalf("peer MAC suffix %#02x, want %#02x", mac[5], defaultPeerMAC)
	}
}

// TestShardedSpecBuildsShardedEnv: the sharded path produces a
// ShardedStack with per-shard loops and exposes the multi-queue device.
func TestShardedSpecBuildsShardedEnv(t *testing.T) {
	s := Spec{
		Clk:     sim.NewVClock(),
		Machine: MachineSpec{Name: "morello", Ports: 1, LineRateBps: 4e9},
		Compartments: []CompartmentSpec{
			{
				Name: "mq", SegBytes: 16 << 20, PoolBufs: 3072,
				Ifs:   []IfSpec{{Port: 0}},
				Stack: StackSpec{Shards: 4, RingSize: 256, CPUBps: 1e9, RTOMinNS: 20e6},
			},
		},
		Peers: []PeerSpec{{Port: 0, LineRateBps: 4e9}},
	}
	bed, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	if bed.Sharded == nil || bed.Dev == nil {
		t.Fatal("sharded bed missing Sharded/Dev")
	}
	if bed.Sharded.NumShards() != 4 || bed.Dev.NumRxQueues() != 4 {
		t.Fatalf("shards %d, queues %d, want 4/4", bed.Sharded.NumShards(), bed.Dev.NumRxQueues())
	}
	// 4 shard loops + 1 peer loop.
	if got := len(bed.Loops()); got != 5 {
		t.Fatalf("loops: %d, want 5", got)
	}
	// RTOMin applied to every shard.
	for i := 0; i < 4; i++ {
		if bed.Sharded.Shard(i) == nil {
			t.Fatalf("shard %d missing", i)
		}
	}
}

// TestTuningReachesBothEnds: a StackSpec with TCP tuning lands on the
// compartment's stack and the peer's.
func TestTuningReachesBothEnds(t *testing.T) {
	tun := &fstack.TCPTuning{SACK: true, WindowScale: 5, SndBufBytes: 1 << 20, RcvBufBytes: 1 << 20}
	s := minimalSpec()
	s.Compartments[0].Stack.Tuning = tun
	s.Peers[0].Stack.Tuning = tun
	bed, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, stk := range []*fstack.Stack{bed.Envs[0].Stk, bed.Peers[0].Env.Stk} {
		if got := stk.TCPTuning(); !got.SACK || got.WindowScale != 5 {
			t.Fatalf("tuning not applied: %+v", got)
		}
	}
}
